package prefs

import (
	"math"
	"strings"
	"testing"

	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/testutil"
	"cqp/internal/value"
)

// figure1Profile builds the paper's Figure 1 example profile:
//
//	p1: doi(GENRE.genre='musical')      = 0.5
//	p2: doi(MOVIE.mid = GENRE.mid)      = 0.9
//	p3: doi(MOVIE.did = DIRECTOR.did)   = 1.0
//	p4: doi(DIRECTOR.name = 'W. Allen') = 0.8
func figure1Profile(t *testing.T) *Profile {
	t.Helper()
	p := NewProfile()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.AddSelection(schema.AttrRef{Relation: "GENRE", Attr: "genre"}, query.OpEq, value.Str("musical"), 0.5))
	must(p.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "mid"}, schema.AttrRef{Relation: "GENRE", Attr: "mid"}, 0.9))
	must(p.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "did"}, schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}, 1.0))
	must(p.AddSelection(schema.AttrRef{Relation: "DIRECTOR", Attr: "name"}, query.OpEq, value.Str("W. Allen"), 0.8))
	return p
}

func TestProfileIndexes(t *testing.T) {
	p := figure1Profile(t)
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	joins := p.JoinsFrom("MOVIE")
	if len(joins) != 2 {
		t.Errorf("JoinsFrom(MOVIE) = %v", joins)
	}
	if len(p.JoinsFrom("GENRE")) != 0 {
		t.Error("join preferences are directed; GENRE has no outgoing edges")
	}
	sels := p.SelectionsOn("DIRECTOR")
	if len(sels) != 1 || sels[0].Doi != 0.8 {
		t.Errorf("SelectionsOn(DIRECTOR) = %v", sels)
	}
	if len(p.SelectionsOn("MOVIE")) != 0 {
		t.Error("MOVIE has no selection preferences")
	}
	if len(p.Atoms()) != 4 {
		t.Error("Atoms length")
	}
}

func TestProfileAddValidation(t *testing.T) {
	p := NewProfile()
	if err := p.Add(Atomic{Doi: 0.5}); err == nil {
		t.Error("no condition should fail")
	}
	sel := &SelectionCond{Attr: schema.AttrRef{Relation: "GENRE", Attr: "genre"}, Op: query.OpEq, Value: value.Str("x")}
	jn := &JoinCond{Left: schema.AttrRef{Relation: "A", Attr: "x"}, Right: schema.AttrRef{Relation: "B", Attr: "y"}}
	if err := p.Add(Atomic{Sel: sel, Join: jn, Doi: 0.5}); err == nil {
		t.Error("both conditions should fail")
	}
	if err := p.Add(Atomic{Sel: sel, Doi: -0.1}); err == nil {
		t.Error("doi < 0 should fail")
	}
	if err := p.Add(Atomic{Sel: sel, Doi: 1.1}); err == nil {
		t.Error("doi > 1 should fail")
	}
	if err := p.Add(Atomic{Sel: sel, Doi: 0.5}); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
	if err := p.Add(Atomic{Sel: sel, Doi: 0.6}); err == nil {
		t.Error("duplicate condition should fail")
	}
}

func TestProfileValidateAgainstSchema(t *testing.T) {
	s := testutil.MovieSchema()
	if err := figure1Profile(t).Validate(s); err != nil {
		t.Errorf("figure-1 profile must validate: %v", err)
	}
	bad := NewProfile()
	_ = bad.AddSelection(schema.AttrRef{Relation: "NOPE", Attr: "x"}, query.OpEq, value.Int(1), 0.5)
	if err := bad.Validate(s); err == nil {
		t.Error("unknown relation must fail validation")
	}
	bad2 := NewProfile()
	_ = bad2.AddSelection(schema.AttrRef{Relation: "MOVIE", Attr: "year"}, query.OpEq, value.Str("x"), 0.5)
	if err := bad2.Validate(s); err == nil {
		t.Error("incomparable literal must fail validation")
	}
	bad3 := NewProfile()
	_ = bad3.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "title"}, schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}, 0.5)
	if err := bad3.Validate(s); err == nil {
		t.Error("type-mismatched join must fail validation")
	}
	bad4 := NewProfile()
	_ = bad4.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "mid"}, schema.AttrRef{Relation: "MOVIE", Attr: "did"}, 0.5)
	if err := bad4.Validate(s); err == nil {
		t.Error("intra-relation join must fail validation")
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	src := `# Figure 1 of the paper
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9

doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`
	p, err := ParseProfile(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	atoms := p.Atoms()
	if !atoms[0].IsSelection() || atoms[0].Doi != 0.5 || atoms[0].Sel.Value.AsStr() != "musical" {
		t.Errorf("p1 = %v", atoms[0])
	}
	if atoms[1].IsSelection() || atoms[1].Join.Right.Relation != "GENRE" {
		t.Errorf("p2 = %v", atoms[1])
	}
	// Serialize and reparse.
	p2, err := ParseProfile(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip changed profile:\n%s\n%s", p.String(), p2.String())
	}
}

func TestParseProfileOperatorsAndLiterals(t *testing.T) {
	p, err := ParseProfile(`
doi(MOVIE.year >= 1990) = 0.7
doi(MOVIE.duration < 120) = 0.4
doi(MOVIE.title <> 'Heat') = 0.2
doi(MOVIE.duration <= 90.5) = 0.3
`)
	if err != nil {
		t.Fatal(err)
	}
	atoms := p.Atoms()
	if atoms[0].Sel.Op != query.OpGe || atoms[0].Sel.Value.AsInt() != 1990 {
		t.Errorf("atom0 = %v", atoms[0])
	}
	if atoms[1].Sel.Op != query.OpLt {
		t.Errorf("atom1 = %v", atoms[1])
	}
	if atoms[2].Sel.Op != query.OpNe {
		t.Errorf("atom2 = %v", atoms[2])
	}
	if atoms[3].Sel.Value.Kind() != value.KindFloat {
		t.Errorf("atom3 = %v", atoms[3])
	}
}

func TestParseProfileErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"doi(GENRE.genre = 'musical') 0.5",   // missing =
		"doi(GENRE.genre = 'musical') = x",   // bad doi
		"doi(GENRE.genre 'musical') = 0.5",   // no operator
		"doi(GENRE = 'musical') = 0.5",       // bad attr ref
		"doi(MOVIE.mid < GENRE.mid) = 0.5",   // join must be =
		"doi(GENRE.genre = 'musical' = 0.5",  // unbalanced paren
		"doi(GENRE.genre = ) = 0.5",          // empty literal
		"doi(GENRE.genre = 'musical') = 2.0", // doi out of range
	}
	for _, src := range bad {
		if _, err := ParseProfile(src); err == nil {
			t.Errorf("ParseProfile(%q) should fail", src)
		}
	}
	// Errors carry the line number.
	_, err := ParseProfile("doi(GENRE.genre = 'musical') = 0.5\nbroken")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line info, got %v", err)
	}
}

func TestParseProfileQuotedParenAndOps(t *testing.T) {
	// Value contains a parenthesis and an operator character.
	p, err := ParseProfile(`doi(MOVIE.title = 'Movie (with > parens)') = 0.6`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Atoms()[0].Sel.Value.AsStr(); got != "Movie (with > parens)" {
		t.Errorf("parsed value %q", got)
	}
}

func TestImplicitComposition(t *testing.T) {
	p := figure1Profile(t)
	atoms := p.Atoms()
	// p3 ∧ p4: MOVIE -> DIRECTOR join then name selection. doi = 1.0 × 0.8.
	imp, err := NewImplicit([]Atomic{atoms[2]}, atoms[3])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp.Doi-0.8) > 1e-12 {
		t.Errorf("doi = %g, want 0.8", imp.Doi)
	}
	if imp.Anchor() != "MOVIE" {
		t.Errorf("anchor = %s", imp.Anchor())
	}
	rels := imp.Relations()
	if len(rels) != 2 || rels[0] != "MOVIE" || rels[1] != "DIRECTOR" {
		t.Errorf("relations = %v", rels)
	}
	want := "MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'"
	if imp.Condition() != want {
		t.Errorf("condition = %q", imp.Condition())
	}
	if !strings.Contains(imp.String(), "= 0.8") {
		t.Errorf("String = %q", imp.String())
	}
	// Atomic selection preference: empty path.
	imp2, err := NewImplicit(nil, atoms[3])
	if err != nil {
		t.Fatal(err)
	}
	if imp2.Anchor() != "DIRECTOR" || imp2.Doi != 0.8 {
		t.Errorf("atomic implicit = %+v", imp2)
	}
}

func TestImplicitValidation(t *testing.T) {
	p := figure1Profile(t)
	atoms := p.Atoms()
	// Terminal must be a selection.
	if _, err := NewImplicit(nil, atoms[2]); err == nil {
		t.Error("join terminal should fail")
	}
	// Path element must be a join.
	if _, err := NewImplicit([]Atomic{atoms[0]}, atoms[3]); err == nil {
		t.Error("selection in path should fail")
	}
	// Selection must attach to the path end.
	if _, err := NewImplicit([]Atomic{atoms[1]}, atoms[3]); err == nil {
		t.Error("detached selection should fail (path ends at GENRE, selection on DIRECTOR)")
	}
	// Disconnected path.
	back := Atomic{Join: &JoinCond{
		Left:  schema.AttrRef{Relation: "GENRE", Attr: "mid"},
		Right: schema.AttrRef{Relation: "MOVIE", Attr: "mid"},
	}, Doi: 0.9}
	if _, err := NewImplicit([]Atomic{atoms[2], back}, atoms[0]); err == nil {
		t.Error("disconnected path should fail (DIRECTOR then GENRE->MOVIE)")
	}
	// Cyclic path: MOVIE->GENRE then GENRE->MOVIE revisits MOVIE.
	sel := Atomic{Sel: &SelectionCond{Attr: schema.AttrRef{Relation: "MOVIE", Attr: "year"}, Op: query.OpEq, Value: value.Int(1990)}, Doi: 0.5}
	if _, err := NewImplicit([]Atomic{atoms[1], back}, sel); err == nil {
		t.Error("cyclic path should fail")
	}
}
