// Package prefs implements the user preference model of Koutrika &
// Ioannidis (ICDE 2004) as adopted by the CQP paper (Section 3): atomic
// selection and join preferences over a personalization graph, implicit
// preferences composed along acyclic paths, and the degree-of-interest
// algebra used to score conjunctions of preferences.
package prefs

// Compose implements f⊗ (Formula 1/9): the degree of interest in an
// implicit preference is the product of the constituent atomic degrees.
// The product satisfies Formula 2 (it never exceeds the minimum operand)
// because every operand lies in [0, 1].
func Compose(dois ...float64) float64 {
	d := 1.0
	for _, x := range dois {
		d *= x
	}
	return d
}

// Conjunction implements r (Formula 3/10): the degree of interest in a set
// of preferences satisfied together, doi(Px) = 1 − Π(1 − doi(pi)).
// It satisfies Formula 4: adding preferences never decreases the result.
func Conjunction(dois ...float64) float64 {
	var a ConjAccum
	a.Reset()
	for _, d := range dois {
		a.Add(d)
	}
	return a.Doi()
}

// ConjAccum incrementally maintains doi(Px) = 1 − Π(1 − di) as preferences
// enter and leave the set. The paper notes (Section 4.3) that all parameter
// formulas admit incremental computation; search algorithms rely on this.
//
// The zero ConjAccum is NOT ready: call Reset first (or use NewConjAccum).
type ConjAccum struct {
	// prod is Π(1 − di) over the current set.
	prod float64
	n    int
	// ones counts members with doi exactly 1, which zero the product
	// irreversibly; tracking them separately keeps Remove exact.
	ones int
}

// NewConjAccum returns an accumulator over the empty set (doi 0).
func NewConjAccum() *ConjAccum {
	a := &ConjAccum{}
	a.Reset()
	return a
}

// Reset empties the accumulator.
func (a *ConjAccum) Reset() {
	a.prod = 1
	a.n = 0
	a.ones = 0
}

// Add inserts a preference with the given doi into the set.
func (a *ConjAccum) Add(doi float64) {
	a.n++
	if doi >= 1 {
		a.ones++
		return
	}
	a.prod *= 1 - doi
}

// Remove deletes a preference with the given doi from the set. The caller
// must only remove dois previously added. Division keeps this O(1); tiny
// floating-point drift is acceptable for CQP's relaxed accuracy needs.
func (a *ConjAccum) Remove(doi float64) {
	a.n--
	if doi >= 1 {
		a.ones--
		return
	}
	a.prod /= 1 - doi
}

// Len returns the number of preferences in the set.
func (a *ConjAccum) Len() int { return a.n }

// Doi returns doi(Px) for the current set.
func (a *ConjAccum) Doi() float64 {
	if a.ones > 0 {
		return 1
	}
	return 1 - a.prod
}
