package prefs

import (
	"fmt"
	"strings"
)

// Implicit is an implicit selection preference (Section 3): a directed
// acyclic path of join preferences through the personalization graph ending
// in an atomic selection preference. Its doi composes the constituent
// atomic dois with f⊗ (Compose).
//
// Example (the paper's p3 ∧ p4):
//
//	MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'    doi = 1.0 × 0.8
type Implicit struct {
	// Path holds the join conditions in traversal order; empty for an
	// atomic selection preference.
	Path []JoinCond
	// Sel is the terminal selection condition.
	Sel SelectionCond
	// Doi is the composed degree of interest.
	Doi float64
}

// NewImplicit composes a path of join atoms with a terminal selection atom,
// computing the doi with f⊗ and verifying acyclicity (no relation visited
// twice).
func NewImplicit(path []Atomic, sel Atomic) (Implicit, error) {
	if !sel.IsSelection() {
		return Implicit{}, fmt.Errorf("prefs: terminal preference %s is not a selection", sel)
	}
	imp := Implicit{Sel: *sel.Sel, Doi: sel.Doi}
	seen := map[string]bool{}
	for i, a := range path {
		if a.IsSelection() {
			return Implicit{}, fmt.Errorf("prefs: path element %s is not a join", a)
		}
		j := *a.Join
		if i == 0 {
			seen[j.Left.Relation] = true
		} else if path[i-1].Join.Right.Relation != j.Left.Relation {
			return Implicit{}, fmt.Errorf("prefs: path is not connected at %s", j)
		}
		if seen[j.Right.Relation] {
			return Implicit{}, fmt.Errorf("prefs: path revisits relation %s (cyclic)", j.Right.Relation)
		}
		seen[j.Right.Relation] = true
		imp.Path = append(imp.Path, j)
		imp.Doi = Compose(imp.Doi, a.Doi)
	}
	if len(imp.Path) > 0 {
		last := imp.Path[len(imp.Path)-1]
		if last.Right.Relation != imp.Sel.Attr.Relation {
			return Implicit{}, fmt.Errorf("prefs: selection %s not attached to path end %s",
				imp.Sel, last.Right.Relation)
		}
	}
	return imp, nil
}

// Anchor returns the relation at which the preference attaches to a query:
// the first join's left relation, or the selection's own relation for an
// atomic selection preference.
func (i Implicit) Anchor() string {
	if len(i.Path) > 0 {
		return i.Path[0].Left.Relation
	}
	return i.Sel.Attr.Relation
}

// Relations returns every relation the preference touches, anchor first.
func (i Implicit) Relations() []string {
	out := []string{i.Anchor()}
	for _, j := range i.Path {
		out = append(out, j.Right.Relation)
	}
	return out
}

// Condition renders the full conjunction in SQL syntax.
func (i Implicit) Condition() string {
	parts := make([]string, 0, len(i.Path)+1)
	for _, j := range i.Path {
		parts = append(parts, j.String())
	}
	parts = append(parts, i.Sel.String())
	return strings.Join(parts, " AND ")
}

// String renders the preference with its doi.
func (i Implicit) String() string {
	return fmt.Sprintf("doi(%s) = %g", i.Condition(), i.Doi)
}
