// Package testutil provides the paper's example movie schema and a tiny,
// fully known dataset shared across package tests.
package testutil

import (
	"cqp/internal/schema"
	"cqp/internal/storage"
	"cqp/internal/value"
)

// MovieSchema builds the schema of Section 3 of the paper:
//
//	MOVIE(mid, title, year, duration, did)
//	DIRECTOR(did, name), GENRE(mid, genre)
//
// with the personalization-graph join edges MOVIE.did = DIRECTOR.did and
// MOVIE.mid = GENRE.mid.
func MovieSchema() *schema.Schema {
	s := schema.New()
	s.MustAddRelation("MOVIE", "mid",
		schema.Column{Name: "mid", Type: value.KindInt},
		schema.Column{Name: "title", Type: value.KindString},
		schema.Column{Name: "year", Type: value.KindInt},
		schema.Column{Name: "duration", Type: value.KindInt},
		schema.Column{Name: "did", Type: value.KindInt})
	s.MustAddRelation("DIRECTOR", "did",
		schema.Column{Name: "did", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindString})
	s.MustAddRelation("GENRE", "",
		schema.Column{Name: "mid", Type: value.KindInt},
		schema.Column{Name: "genre", Type: value.KindString})
	s.MustAddJoin("MOVIE.did", "DIRECTOR.did")
	s.MustAddJoin("MOVIE.mid", "GENRE.mid")
	return s
}

// MovieDB loads a small, fully known dataset over MovieSchema:
//
//	DIRECTOR: (1, "W. Allen"), (2, "S. Kubrick"), (3, "A. Hitchcock")
//	MOVIE:    (1,"Bananas",1971,82,1) (2,"Manhattan",1979,96,1)
//	          (3,"The Shining",1980,146,2) (4,"Psycho",1960,109,3)
//	          (5,"Vertigo",1958,128,3) (6,"Everyone Says I Love You",1996,101,1)
//	GENRE:    (1,comedy) (2,comedy) (2,drama) (3,horror) (4,horror)
//	          (4,thriller) (5,thriller) (6,musical) (6,comedy)
//
// Musical ∧ W. Allen therefore selects exactly movie 6.
func MovieDB(blockSize int) *storage.DB {
	db := storage.NewDB(MovieSchema(), blockSize)
	d := db.MustTable("DIRECTOR")
	d.MustInsert(value.Int(1), value.Str("W. Allen"))
	d.MustInsert(value.Int(2), value.Str("S. Kubrick"))
	d.MustInsert(value.Int(3), value.Str("A. Hitchcock"))

	m := db.MustTable("MOVIE")
	m.MustInsert(value.Int(1), value.Str("Bananas"), value.Int(1971), value.Int(82), value.Int(1))
	m.MustInsert(value.Int(2), value.Str("Manhattan"), value.Int(1979), value.Int(96), value.Int(1))
	m.MustInsert(value.Int(3), value.Str("The Shining"), value.Int(1980), value.Int(146), value.Int(2))
	m.MustInsert(value.Int(4), value.Str("Psycho"), value.Int(1960), value.Int(109), value.Int(3))
	m.MustInsert(value.Int(5), value.Str("Vertigo"), value.Int(1958), value.Int(128), value.Int(3))
	m.MustInsert(value.Int(6), value.Str("Everyone Says I Love You"), value.Int(1996), value.Int(101), value.Int(1))

	g := db.MustTable("GENRE")
	g.MustInsert(value.Int(1), value.Str("comedy"))
	g.MustInsert(value.Int(2), value.Str("comedy"))
	g.MustInsert(value.Int(2), value.Str("drama"))
	g.MustInsert(value.Int(3), value.Str("horror"))
	g.MustInsert(value.Int(4), value.Str("horror"))
	g.MustInsert(value.Int(4), value.Str("thriller"))
	g.MustInsert(value.Int(5), value.Str("thriller"))
	g.MustInsert(value.Int(6), value.Str("musical"))
	g.MustInsert(value.Int(6), value.Str("comedy"))
	return db
}
