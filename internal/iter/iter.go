// Package iter is the streaming executor substrate: composable pull
// iterators (Next/Close) over storage rows, with cancellation checkpoints
// woven into every loop and operators that degrade to disk instead of
// exhausting memory.
//
// The seed executor materialized every intermediate result — fine for the
// paper's 4000-movie evaluation, fatal for serving databases larger than
// RAM. Here a query becomes a tree of iterators pulled one row at a time:
// scans stream from the storage backend's cursors, filters and
// projections transform in place, and the two stateful operators — hash
// join and distinct — watch a per-query memory budget (threaded through
// context.Context, see WithBudget) and spill their state to hash-
// partitioned temp files (Grace style) when they exceed it. A top-k
// consumer simply stops pulling: no operator below ever materializes
// what the consumer never asks for.
//
// Cancellation: operators poll ctx.Err() every checkEvery rows inside
// their tight loops, so an expired deadline stops a scan or a join build
// mid-stream, not just between phases. Fault injection: the iter.spill
// point fires when spill partitions are created and when they are
// finalized for read-back, standing in for a full or failing scratch
// disk.
package iter

import (
	"context"

	"cqp/internal/storage"
)

// checkEvery is how many rows a tight operator loop processes between
// ctx.Err() polls: frequent enough that cancellation lands promptly,
// sparse enough to stay invisible in profiles.
const checkEvery = 64

// Iterator is a pull-based row stream. Next returns the next row until
// ok == false (end) or a non-nil error; after either, callers stop. Close
// releases operator state (cursors, spill files) and must be called
// exactly once; it propagates to child iterators.
type Iterator interface {
	Next() (row storage.Row, ok bool, err error)
	Close() error
}

// Budget caps the in-memory state of one stateful operator (hash-join
// build table, distinct set). Bytes == 0 means unlimited (never spill);
// Dir == "" spills to the OS temp directory.
type Budget struct {
	Bytes int64
	Dir   string
}

type budgetKey struct{}

// WithBudget threads a per-query spill budget through the context; every
// stateful operator created under it observes the cap. The context is
// used (rather than plumbing a parameter through every evaluation
// signature) because the budget is an operational property of a request,
// exactly like its deadline.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFromContext returns the budget installed by WithBudget, or the
// unlimited zero Budget.
func BudgetFromContext(ctx context.Context) Budget {
	b, _ := ctx.Value(budgetKey{}).(Budget)
	return b
}

// Hash hashes the row's values at idx — the one join/grouping key hash
// shared by every operator (and by package exec), replacing the
// duplicated per-call-site helpers of the seed executor. Values that are
// Equal hash identically.
func Hash(r storage.Row, idx []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, i := range idx {
		h = (h ^ r[i].Hash()) * 1099511628211
	}
	return h
}

// HashRow hashes all values of the row.
func HashRow(r storage.Row) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range r {
		h = (h ^ v.Hash()) * 1099511628211
	}
	return h
}

// rowBytes is the budget charge for holding r in operator state: the
// storage width is close enough to the in-memory footprint and already
// computed by the block model.
func rowBytes(r storage.Row) int64 { return int64(r.Width()) }

// --- sources ---

type cursorIter struct {
	ctx context.Context
	cur storage.Cursor
	n   int
}

// FromCursor streams a storage cursor, polling for cancellation every
// checkEvery rows so a scan over a huge heap file dies promptly with its
// request.
func FromCursor(ctx context.Context, cur storage.Cursor) Iterator {
	return &cursorIter{ctx: ctx, cur: cur}
}

func (it *cursorIter) Next() (storage.Row, bool, error) {
	if it.n%checkEvery == 0 {
		if err := it.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	it.n++
	return it.cur.Next()
}

func (it *cursorIter) Close() error { return it.cur.Close() }

type sliceIter struct {
	rows []storage.Row
	i    int
}

// FromRows streams a materialized slice (tests, residual small inputs).
func FromRows(rows []storage.Row) Iterator { return &sliceIter{rows: rows} }

type sliceCtxIter struct {
	ctx  context.Context
	rows []storage.Row
	i    int
}

// FromRowsContext streams a materialized slice with the same cancellation
// checkpoints a cursor scan has — the source for shared-scan consumers,
// whose "scan" is a slice another consumer already materialized but must
// still die promptly with its request.
func FromRowsContext(ctx context.Context, rows []storage.Row) Iterator {
	return &sliceCtxIter{ctx: ctx, rows: rows}
}

func (it *sliceCtxIter) Next() (storage.Row, bool, error) {
	if it.i%checkEvery == 0 {
		if err := it.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	if it.i >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.i]
	it.i++
	return r, true, nil
}

func (it *sliceCtxIter) Close() error { return nil }

func (it *sliceIter) Next() (storage.Row, bool, error) {
	if it.i >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.i]
	it.i++
	return r, true, nil
}

func (it *sliceIter) Close() error { return nil }

// --- stateless transforms ---

type filterIter struct {
	src  Iterator
	keep func(storage.Row) bool
}

// Filter passes through rows satisfying keep.
func Filter(src Iterator, keep func(storage.Row) bool) Iterator {
	return &filterIter{src: src, keep: keep}
}

func (it *filterIter) Next() (storage.Row, bool, error) {
	for {
		r, ok, err := it.src.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		if it.keep(r) {
			return r, true, nil
		}
	}
}

func (it *filterIter) Close() error { return it.src.Close() }

type projectIter struct {
	src Iterator
	idx []int
}

// Project emits fresh rows holding the source columns at idx, in order.
func Project(src Iterator, idx []int) Iterator {
	return &projectIter{src: src, idx: idx}
}

func (it *projectIter) Next() (storage.Row, bool, error) {
	r, ok, err := it.src.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	out := make(storage.Row, len(it.idx))
	for i, j := range it.idx {
		out[i] = r[j]
	}
	return out, true, nil
}

func (it *projectIter) Close() error { return it.src.Close() }

type limitIter struct {
	src  Iterator
	left int
}

// Limit stops after n rows; operators below it never produce more work
// than the consumer asked for.
func Limit(src Iterator, n int) Iterator { return &limitIter{src: src, left: n} }

func (it *limitIter) Next() (storage.Row, bool, error) {
	if it.left <= 0 {
		return nil, false, nil
	}
	r, ok, err := it.src.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	it.left--
	return r, true, nil
}

func (it *limitIter) Close() error { return it.src.Close() }

// Collect drains the iterator into a slice and closes it, keeping the
// first error from either.
func Collect(it Iterator) ([]storage.Row, error) {
	var rows []storage.Row
	var err error
	for {
		r, ok, nerr := it.Next()
		if nerr != nil {
			err = nerr
			break
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	if cerr := it.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return rows, err
}

// --- row set (hash-bucketed, equality-checked) ---

// RowSet is a duplicate detector keyed by a 64-bit row hash with
// equality-checked buckets. It replaces the seed executor's string
// rowKey (which rendered every value to SQL text per probe); membership
// now costs one hash and, on collision, value comparisons — no per-row
// string allocation.
type RowSet struct {
	m     map[uint64][]storage.Row
	n     int
	bytes int64
}

// NewRowSet returns an empty set.
func NewRowSet() *RowSet { return &RowSet{m: make(map[uint64][]storage.Row)} }

// Add inserts r if absent, reporting whether it was newly added.
func (s *RowSet) Add(r storage.Row) bool {
	h := HashRow(r)
	for _, o := range s.m[h] {
		if EqualRows(o, r) {
			return false
		}
	}
	s.m[h] = append(s.m[h], r)
	s.n++
	s.bytes += rowBytes(r)
	return true
}

// Contains reports membership without inserting.
func (s *RowSet) Contains(r storage.Row) bool {
	for _, o := range s.m[HashRow(r)] {
		if EqualRows(o, r) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct rows.
func (s *RowSet) Len() int { return s.n }

// Bytes returns the approximate memory held by the set's rows.
func (s *RowSet) Bytes() int64 { return s.bytes }

// Rows returns the distinct rows in unspecified order.
func (s *RowSet) Rows() []storage.Row {
	out := make([]storage.Row, 0, s.n)
	for _, b := range s.m {
		out = append(out, b...)
	}
	return out
}

// EqualRows reports positionwise value equality (numeric kinds compare
// numerically, matching join semantics).
func EqualRows(a, b storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}
