package iter

import (
	"context"
	"fmt"

	"cqp/internal/storage"
	"cqp/internal/value"
)

// Grouper is the personalized union's GROUP BY operator: it accumulates
// (row, tag) pairs — tag being the index of the sub-query that produced
// the row — and yields each distinct row with the sorted set of tags that
// matched it. Rows are bucketed by 64-bit hash with equality-checked
// buckets (no string keys). When the table outgrows the context budget
// the grouper spills pairs to hash partitions (the tag rides along as one
// extra encoded column) and regroups partition by partition at drain
// time, bounding memory by the largest partition.
type Grouper struct {
	ctx    context.Context
	budget Budget

	m     map[uint64][]*group
	bytes int64
	n     int

	spilled bool
	run     *spillRun

	polls int
}

type group struct {
	row  storage.Row
	tags []int
}

// NewGrouper returns an empty grouper under ctx's budget.
func NewGrouper(ctx context.Context) *Grouper {
	return &Grouper{ctx: ctx, budget: BudgetFromContext(ctx), m: make(map[uint64][]*group)}
}

func (g *Grouper) checkCtx() error {
	g.polls++
	if g.polls%checkEvery == 0 {
		return g.ctx.Err()
	}
	return nil
}

// Add records that sub-query tag produced row. Duplicate (row, tag) pairs
// collapse.
func (g *Grouper) Add(row storage.Row, tag int) error {
	if err := g.checkCtx(); err != nil {
		return err
	}
	if g.spilled {
		return g.run.write(HashRow(row), 0, append(row[:len(row):len(row)], value.Int(int64(tag))))
	}
	g.add(row, tag)
	if g.budget.Bytes > 0 && g.bytes > g.budget.Bytes {
		return g.spill()
	}
	return nil
}

func (g *Grouper) add(row storage.Row, tag int) {
	h := HashRow(row)
	for _, grp := range g.m[h] {
		if EqualRows(grp.row, row) {
			for _, t := range grp.tags {
				if t == tag {
					return
				}
			}
			grp.tags = append(grp.tags, tag)
			g.bytes += 8
			return
		}
	}
	g.m[h] = append(g.m[h], &group{row: row, tags: []int{tag}})
	g.n++
	g.bytes += rowBytes(row) + 24
}

// spill converts the in-memory table into partitioned (row, tag) frames.
func (g *Grouper) spill() error {
	run, err := newSpillRun(g.budget.Dir)
	if err != nil {
		return err
	}
	g.run = run
	for h, bucket := range g.m {
		for _, grp := range bucket {
			for _, tag := range grp.tags {
				wide := append(grp.row[:len(grp.row):len(grp.row)], value.Int(int64(tag)))
				if err := g.run.write(h, 0, wide); err != nil {
					return err
				}
			}
		}
	}
	g.m = nil
	g.spilled = true
	return nil
}

// Len returns the number of distinct rows seen so far (pre-spill only;
// after a spill the count is known only after Each).
func (g *Grouper) Len() int { return g.n }

// Each yields every (row, tags) group once; tags are in insertion order
// (ascending sub index when Add is called per sub in order). Group order
// is unspecified — callers rank or sort above. Each may be called once.
func (g *Grouper) Each(fn func(row storage.Row, tags []int) error) error {
	if !g.spilled {
		for _, bucket := range g.m {
			for _, grp := range bucket {
				if err := g.checkCtx(); err != nil {
					return err
				}
				if err := fn(grp.row, grp.tags); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := g.run.finish(); err != nil {
		return err
	}
	for p := 0; p < spillFanout; p++ {
		g.m = make(map[uint64][]*group)
		r := g.run.reader(p)
		for {
			if err := g.checkCtx(); err != nil {
				return err
			}
			_, wide, ok, err := r.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if len(wide) == 0 {
				return fmt.Errorf("iter: group spill frame with no tag column")
			}
			row, tag := wide[:len(wide)-1], int(wide[len(wide)-1].AsInt())
			g.add(row, tag)
		}
		for _, bucket := range g.m {
			for _, grp := range bucket {
				if err := g.checkCtx(); err != nil {
					return err
				}
				if err := fn(grp.row, grp.tags); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Close releases spill state.
func (g *Grouper) Close() error {
	g.m = nil
	if g.run != nil {
		return g.run.Close()
	}
	return nil
}
