package iter

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"cqp/internal/blockstore"
	"cqp/internal/fault"
	"cqp/internal/storage"
)

// spillFanout is the number of hash partitions a spilling operator fans
// out to. With F partitions a build side of B bytes needs ~B/F bytes of
// memory per read-back pass — one level of Grace partitioning carries a
// budget of M to inputs of roughly F×M.
const spillFanout = 16

// Package-wide spill telemetry, readable by benchmarks and the serving
// daemon without plumbing a registry through every operator.
var (
	spillRuns  atomic.Int64
	spillRows  atomic.Int64
	spillBytes atomic.Int64
)

// SpillStats reports cumulative spill activity: runs (operator state
// overflows), rows written to spill files, and bytes written.
func SpillStats() (runs, rows, bytes int64) {
	return spillRuns.Load(), spillRows.Load(), spillBytes.Load()
}

// spillRun is one operator's set of hash partition files. Files are
// unlinked immediately after creation, so crashed processes leak nothing.
// Frames are uvarint-length-prefixed: payload = [marker byte][encoded
// row] using the blockstore sort-preserving codec (self-delimiting, so
// wide schema-less tuples round-trip).
type spillRun struct {
	files []*os.File
	w     []*bufio.Writer
	rows  []int
	buf   []byte
}

// newSpillRun opens fanout partition files under dir (or the OS temp dir).
// The iter.spill fault point fires here: a failing scratch disk surfaces
// at the moment an operator first needs it.
func newSpillRun(dir string) (*spillRun, error) {
	if err := fault.Inject(fault.IterSpill); err != nil {
		return nil, fmt.Errorf("iter: spill: %w", err)
	}
	if dir == "" {
		dir = os.TempDir()
	}
	r := &spillRun{
		files: make([]*os.File, spillFanout),
		w:     make([]*bufio.Writer, spillFanout),
		rows:  make([]int, spillFanout),
	}
	for i := range r.files {
		f, err := os.CreateTemp(dir, "cqp-spill-*.part")
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("iter: spill: %w", err)
		}
		// Unlink now: the handle keeps the data alive, the namespace
		// forgets it, and a crash cannot strand partitions on disk.
		os.Remove(f.Name())
		r.files[i] = f
		// Small per-partition buffers: a run holds spillFanout of them,
		// and buffer memory must not dwarf the budget that triggered the
		// spill in the first place.
		r.w[i] = bufio.NewWriterSize(f, 1<<13)
	}
	spillRuns.Add(1)
	return r, nil
}

// write appends one framed row to the partition owning hash h.
func (r *spillRun) write(h uint64, marker byte, row storage.Row) error {
	p := int(h % spillFanout)
	r.buf = r.buf[:0]
	r.buf = append(r.buf, marker)
	r.buf = blockstore.AppendRow(r.buf, row)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(r.buf)))
	if _, err := r.w[p].Write(hdr[:n]); err != nil {
		return fmt.Errorf("iter: spill write: %w", err)
	}
	if _, err := r.w[p].Write(r.buf); err != nil {
		return fmt.Errorf("iter: spill write: %w", err)
	}
	r.rows[p]++
	spillRows.Add(1)
	spillBytes.Add(int64(n + len(r.buf)))
	return nil
}

// finish flushes all partitions and rewinds them for read-back. The
// iter.spill fault point fires once more: flush is where ENOSPC on a
// nearly-full scratch disk actually lands.
func (r *spillRun) finish() error {
	if err := fault.Inject(fault.IterSpill); err != nil {
		return fmt.Errorf("iter: spill: %w", err)
	}
	for i, w := range r.w {
		if err := w.Flush(); err != nil {
			return fmt.Errorf("iter: spill flush: %w", err)
		}
		if _, err := r.files[i].Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("iter: spill: %w", err)
		}
	}
	return nil
}

// reader streams one partition back.
func (r *spillRun) reader(p int) *spillReader {
	return &spillReader{br: bufio.NewReaderSize(r.files[p], 1<<16), left: r.rows[p]}
}

// Close releases every partition file (already unlinked).
func (r *spillRun) Close() error {
	var first error
	for _, f := range r.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.files = nil
	return first
}

type spillReader struct {
	br   *bufio.Reader
	left int
	buf  []byte
}

// next returns the next framed row, ok == false at partition end.
func (s *spillReader) next() (marker byte, row storage.Row, ok bool, err error) {
	if s.left == 0 {
		return 0, nil, false, nil
	}
	n, err := binary.ReadUvarint(s.br)
	if err != nil {
		return 0, nil, false, fmt.Errorf("iter: spill read: %w", err)
	}
	if uint64(cap(s.buf)) < n {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	if _, err := io.ReadFull(s.br, s.buf); err != nil {
		return 0, nil, false, fmt.Errorf("iter: spill read: %w", err)
	}
	row, rest, err := blockstore.DecodeRow(s.buf[1:])
	if err != nil {
		return 0, nil, false, fmt.Errorf("iter: spill read: %w", err)
	}
	if len(rest) != 0 {
		return 0, nil, false, fmt.Errorf("iter: spill read: %d trailing bytes in frame", len(rest))
	}
	s.left--
	return s.buf[0], row, true, nil
}
