package iter

import (
	"context"

	"cqp/internal/storage"
)

// markers for distinct spill frames: a row the operator already emitted
// downstream (it must suppress later duplicates but never re-emit) versus
// a row still awaiting its verdict.
const (
	markEmitted byte = 1
	markPending byte = 0
)

// Distinct emits each distinct row once, in first-appearance order while
// the seen-set fits the context budget. If the set outgrows the budget,
// the operator spills: every already-emitted row goes to its hash
// partition flagged markEmitted, the rest of the input streams to
// partitions flagged markPending, and partitions then resolve
// independently — each rebuilds only its own slice of the seen-set, so
// memory is bounded by the largest partition, not the input.
func Distinct(ctx context.Context, src Iterator) Iterator {
	return &distinctIter{ctx: ctx, src: src, budget: BudgetFromContext(ctx), set: NewRowSet()}
}

type distinctIter struct {
	ctx    context.Context
	src    Iterator
	budget Budget
	set    *RowSet

	spilled bool
	run     *spillRun
	part    int
	pr      *spillReader

	n    int
	done bool
}

func (it *distinctIter) checkCtx() error {
	it.n++
	if it.n%checkEvery == 0 {
		return it.ctx.Err()
	}
	return nil
}

func (it *distinctIter) Next() (storage.Row, bool, error) {
	if it.done {
		return nil, false, nil
	}
	row, ok, err := it.next()
	if err != nil || !ok {
		it.done = true
		return nil, false, err
	}
	return row, true, nil
}

func (it *distinctIter) next() (storage.Row, bool, error) {
	// Streaming mode: emit first-seen rows as they arrive.
	for !it.spilled {
		if err := it.checkCtx(); err != nil {
			return nil, false, err
		}
		r, ok, err := it.src.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		if !it.set.Add(r) {
			continue
		}
		if it.budget.Bytes > 0 && it.set.Bytes() > it.budget.Bytes {
			if err := it.spill(); err != nil {
				return nil, false, err
			}
			// r itself was just emitted-to-be: it is in the set, hence
			// spilled as markEmitted — but the caller has not seen it
			// yet. Emit it now; the spill marked it so partitions will
			// not emit it again.
			return r, true, nil
		}
		return r, true, nil
	}
	// Partition drain mode.
	for {
		if it.pr != nil {
			for {
				if err := it.checkCtx(); err != nil {
					return nil, false, err
				}
				marker, row, ok, err := it.pr.next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					break
				}
				if marker == markEmitted {
					it.set.Add(row)
					continue
				}
				if it.set.Add(row) {
					return row, true, nil
				}
			}
		}
		it.part++
		if it.part >= spillFanout {
			return nil, false, nil
		}
		it.set = NewRowSet()
		it.pr = it.run.reader(it.part)
	}
}

// spill flushes the seen-set (all already emitted) to partitions and
// routes the rest of the input after it, then readies partition drain.
func (it *distinctIter) spill() error {
	run, err := newSpillRun(it.budget.Dir)
	if err != nil {
		return err
	}
	it.run = run
	for _, r := range it.set.Rows() {
		if err := it.run.write(HashRow(r), markEmitted, r); err != nil {
			return err
		}
	}
	it.set = nil
	for {
		if err := it.checkCtx(); err != nil {
			return err
		}
		r, ok, err := it.src.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := it.run.write(HashRow(r), markPending, r); err != nil {
			return err
		}
	}
	if err := it.run.finish(); err != nil {
		return err
	}
	it.spilled = true
	it.part = -1
	it.pr = nil
	return nil
}

func (it *distinctIter) Close() error {
	err := it.src.Close()
	if it.run != nil {
		if e := it.run.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
