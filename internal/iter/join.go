package iter

import (
	"context"

	"cqp/internal/storage"
)

// HashJoin equi-joins probe rows against build rows: output rows are
// probe[:probeWidth] ++ build (the probe side's column layout first,
// matching the executor's left-deep join trees). The build side is
// drained on the first Next; the probe side streams, so output arrives in
// probe order while the build fits in memory.
//
// When the build table exceeds the context budget (WithBudget), the join
// switches to Grace mode: build rows are hash-partitioned to spill files,
// the probe side is partitioned the same way, and partitions join
// pairwise — each pass holds only ~1/spillFanout of the build side.
// Output order then follows partition order; callers that need a total
// order sort above the join (the personalized union ranks by doi anyway).
func HashJoin(ctx context.Context, probe, build Iterator, probeIdx, buildIdx []int, probeWidth, buildWidth int) Iterator {
	return &hashJoinIter{
		ctx: ctx, probe: probe, build: build,
		pIdx: probeIdx, bIdx: buildIdx,
		pWidth: probeWidth, bWidth: buildWidth,
		budget: BudgetFromContext(ctx),
	}
}

type hashJoinIter struct {
	ctx          context.Context
	probe, build Iterator
	pIdx, bIdx   []int
	pWidth       int
	bWidth       int
	budget       Budget

	inited bool
	table  map[uint64][]storage.Row

	spilled  bool
	buildRun *spillRun
	probeRun *spillRun
	part     int
	pr       *spillReader

	cur    storage.Row
	bucket []storage.Row
	bi     int
	n      int
	done   bool
}

func (it *hashJoinIter) checkCtx() error {
	it.n++
	if it.n%checkEvery == 0 {
		return it.ctx.Err()
	}
	return nil
}

// init drains the build side, spilling to partitions if it outgrows the
// budget, and in that case also partitions the entire probe side.
func (it *hashJoinIter) init() error {
	it.inited = true
	it.table = make(map[uint64][]storage.Row)
	var bytes int64
	for {
		if err := it.checkCtx(); err != nil {
			return err
		}
		r, ok, err := it.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h := Hash(r, it.bIdx)
		if it.spilled {
			if err := it.buildRun.write(h, 0, r); err != nil {
				return err
			}
			continue
		}
		it.table[h] = append(it.table[h], r)
		bytes += rowBytes(r)
		if it.budget.Bytes > 0 && bytes > it.budget.Bytes {
			if err := it.startSpill(); err != nil {
				return err
			}
		}
	}
	if !it.spilled {
		return nil
	}
	// Partition the probe side the same way.
	run, err := newSpillRun(it.budget.Dir)
	if err != nil {
		return err
	}
	it.probeRun = run
	for {
		if err := it.checkCtx(); err != nil {
			return err
		}
		r, ok, err := it.probe.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := it.probeRun.write(Hash(r, it.pIdx), 0, r); err != nil {
			return err
		}
	}
	if err := it.buildRun.finish(); err != nil {
		return err
	}
	if err := it.probeRun.finish(); err != nil {
		return err
	}
	it.part = -1
	return nil
}

// startSpill converts the in-memory build table into partition files.
func (it *hashJoinIter) startSpill() error {
	run, err := newSpillRun(it.budget.Dir)
	if err != nil {
		return err
	}
	it.buildRun = run
	for h, bucket := range it.table {
		for _, r := range bucket {
			if err := it.buildRun.write(h, 0, r); err != nil {
				return err
			}
		}
	}
	it.table = nil
	it.spilled = true
	return nil
}

func (it *hashJoinIter) equalOn(l, r storage.Row) bool {
	for k := range it.pIdx {
		if l[it.pIdx[k]].Compare(r[it.bIdx[k]]) != 0 {
			return false
		}
	}
	return true
}

func (it *hashJoinIter) emit(r storage.Row) storage.Row {
	out := make(storage.Row, it.pWidth+it.bWidth)
	copy(out, it.cur[:it.pWidth])
	copy(out[it.pWidth:], r)
	return out
}

func (it *hashJoinIter) Next() (storage.Row, bool, error) {
	if it.done {
		return nil, false, nil
	}
	if !it.inited {
		if err := it.init(); err != nil {
			it.done = true
			return nil, false, err
		}
	}
	for {
		if err := it.checkCtx(); err != nil {
			it.done = true
			return nil, false, err
		}
		// Drain the current probe row's candidate bucket.
		for it.bi < len(it.bucket) {
			r := it.bucket[it.bi]
			it.bi++
			if it.equalOn(it.cur, r) {
				return it.emit(r), true, nil
			}
		}
		// Advance to the next probe row.
		var row storage.Row
		var ok bool
		var err error
		if it.spilled {
			row, ok, err = it.nextSpilledProbe()
		} else {
			row, ok, err = it.probe.Next()
		}
		if err != nil {
			it.done = true
			return nil, false, err
		}
		if !ok {
			it.done = true
			return nil, false, nil
		}
		it.cur = row
		it.bucket = it.table[Hash(row, it.pIdx)]
		it.bi = 0
	}
}

// nextSpilledProbe streams probe partitions, (re)building the matching
// build partition's table at each partition boundary.
func (it *hashJoinIter) nextSpilledProbe() (storage.Row, bool, error) {
	for {
		if it.pr != nil {
			_, row, ok, err := it.pr.next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return row, true, nil
			}
		}
		it.part++
		if it.part >= spillFanout {
			return nil, false, nil
		}
		// Load this partition's build side.
		it.table = make(map[uint64][]storage.Row)
		br := it.buildRun.reader(it.part)
		for {
			if err := it.checkCtx(); err != nil {
				return nil, false, err
			}
			_, row, ok, err := br.next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			it.table[Hash(row, it.bIdx)] = append(it.table[Hash(row, it.bIdx)], row)
		}
		it.pr = it.probeRun.reader(it.part)
	}
}

func (it *hashJoinIter) Close() error {
	err := it.probe.Close()
	if e := it.build.Close(); e != nil && err == nil {
		err = e
	}
	if it.buildRun != nil {
		if e := it.buildRun.Close(); e != nil && err == nil {
			err = e
		}
	}
	if it.probeRun != nil {
		if e := it.probeRun.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Cross emits the cartesian product probe × build (the executor's
// fallback for disconnected queries). The build side is materialized —
// disconnected products are degenerate plans over small inputs, so no
// spill path exists here.
func Cross(ctx context.Context, probe, build Iterator, probeWidth, buildWidth int) Iterator {
	return &crossIter{ctx: ctx, probe: probe, build: build, pWidth: probeWidth, bWidth: buildWidth}
}

type crossIter struct {
	ctx          context.Context
	probe, build Iterator
	pWidth       int
	bWidth       int

	inited bool
	rows   []storage.Row
	cur    storage.Row
	i      int
	n      int
	done   bool
}

func (it *crossIter) Next() (storage.Row, bool, error) {
	if it.done {
		return nil, false, nil
	}
	if !it.inited {
		it.inited = true
		var err error
		it.rows, err = collectKeepOpen(it.ctx, it.build)
		if err != nil {
			it.done = true
			return nil, false, err
		}
		it.i = len(it.rows) // force a probe pull
	}
	for {
		it.n++
		if it.n%checkEvery == 0 {
			if err := it.ctx.Err(); err != nil {
				it.done = true
				return nil, false, err
			}
		}
		if it.i < len(it.rows) {
			r := it.rows[it.i]
			it.i++
			out := make(storage.Row, it.pWidth+it.bWidth)
			copy(out, it.cur[:it.pWidth])
			copy(out[it.pWidth:], r)
			return out, true, nil
		}
		row, ok, err := it.probe.Next()
		if err != nil || !ok {
			it.done = true
			return nil, false, err
		}
		it.cur = row
		it.i = 0
	}
}

func (it *crossIter) Close() error {
	err := it.probe.Close()
	if e := it.build.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// collectKeepOpen drains src without closing it (the owner closes).
func collectKeepOpen(ctx context.Context, src Iterator) ([]storage.Row, error) {
	var rows []storage.Row
	for {
		if len(rows)%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		r, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, r)
	}
}
