package iter

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"cqp/internal/fault"
	"cqp/internal/storage"
	"cqp/internal/value"
)

func intRow(vals ...int64) storage.Row {
	r := make(storage.Row, len(vals))
	for i, v := range vals {
		r[i] = value.Int(v)
	}
	return r
}

func rowStrings(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.SQL() + "|"
		}
		out[i] = s
	}
	return out
}

func sortedRowStrings(rows []storage.Row) []string {
	s := rowStrings(rows)
	sort.Strings(s)
	return s
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFilterProjectLimit(t *testing.T) {
	var rows []storage.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, intRow(i, i*2))
	}
	it := Limit(Project(Filter(FromRows(rows), func(r storage.Row) bool {
		return r[0].AsInt()%2 == 0
	}), []int{1}), 10)
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}
	for i, r := range got {
		if want := int64(i * 4); r[0].AsInt() != want || len(r) != 1 {
			t.Fatalf("row %d = %v, want [%d]", i, r, want)
		}
	}
}

// joinInputs builds a probe/build pair whose expected join result is easy
// to enumerate: probe (i, i%m), build (j, payload) joined on probe[1] ==
// build[0].
func joinInputs(n, m int) (probe, build []storage.Row, want []string) {
	for i := 0; i < n; i++ {
		probe = append(probe, intRow(int64(i), int64(i%m)))
	}
	for j := 0; j < m; j++ {
		build = append(build, intRow(int64(j), int64(1000+j)))
	}
	for i := 0; i < n; i++ {
		j := i % m
		want = append(want, fmt.Sprintf("%d|%d|%d|%d|", i, j, j, 1000+j))
	}
	sort.Strings(want)
	return
}

func TestHashJoinInMemory(t *testing.T) {
	probe, build, want := joinInputs(500, 20)
	it := HashJoin(context.Background(), FromRows(probe), FromRows(build),
		[]int{1}, []int{0}, 2, 2)
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	// In-memory mode preserves probe order exactly.
	if !equalStrings(sortedRowStrings(got), want) {
		t.Fatalf("join mismatch: %d rows", len(got))
	}
	for i, r := range got {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("probe order broken at %d", i)
		}
	}
}

func TestHashJoinSpillMatchesInMemory(t *testing.T) {
	probe, build, want := joinInputs(2000, 300)
	ctx := WithBudget(context.Background(), Budget{Bytes: 512, Dir: t.TempDir()})
	r0, _, _ := SpillStats()
	it := HashJoin(ctx, FromRows(probe), FromRows(build), []int{1}, []int{0}, 2, 2)
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if r1, _, _ := SpillStats(); r1 == r0 {
		t.Fatal("join did not spill under a 512-byte budget")
	}
	if !equalStrings(sortedRowStrings(got), want) {
		t.Fatalf("spilled join result differs: %d rows, want %d", len(got), len(want))
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	// Multiple matches per key on both sides: 3 probe × 2 build per key.
	var probe, build []storage.Row
	for k := int64(0); k < 50; k++ {
		for d := int64(0); d < 3; d++ {
			probe = append(probe, intRow(k, d))
		}
		for d := int64(0); d < 2; d++ {
			build = append(build, intRow(k, 100+d))
		}
	}
	for _, budget := range []Budget{{}, {Bytes: 256}} {
		ctx := WithBudget(context.Background(), budget)
		it := HashJoin(ctx, FromRows(probe), FromRows(build), []int{0}, []int{0}, 2, 2)
		got, err := Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50*3*2 {
			t.Fatalf("budget %+v: %d rows, want %d", budget, len(got), 50*3*2)
		}
	}
}

func TestCross(t *testing.T) {
	probe := []storage.Row{intRow(1), intRow(2)}
	build := []storage.Row{intRow(10), intRow(20), intRow(30)}
	got, err := Collect(Cross(context.Background(), FromRows(probe), FromRows(build), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("%d rows, want 6", len(got))
	}
	if got[0][0].AsInt() != 1 || got[0][1].AsInt() != 10 || got[5][0].AsInt() != 2 || got[5][1].AsInt() != 30 {
		t.Fatalf("cross product order wrong: %v", got)
	}
}

func distinctInput(n, distinct int) ([]storage.Row, []string) {
	var rows []storage.Row
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		k := int64(i % distinct)
		rows = append(rows, intRow(k, k*7))
		want[fmt.Sprintf("%d|%d|", k, k*7)] = true
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return rows, keys
}

func TestDistinctInMemory(t *testing.T) {
	rows, want := distinctInput(1000, 100)
	got, err := Collect(Distinct(context.Background(), FromRows(rows)))
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(sortedRowStrings(got), want) {
		t.Fatalf("distinct mismatch: %d rows, want %d", len(got), len(want))
	}
	// First-appearance order in streaming mode.
	for i, r := range got {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("first-appearance order broken at %d", i)
		}
	}
}

func TestDistinctSpillMatchesInMemory(t *testing.T) {
	rows, want := distinctInput(5000, 700)
	ctx := WithBudget(context.Background(), Budget{Bytes: 1024, Dir: t.TempDir()})
	r0, _, _ := SpillStats()
	got, err := Collect(Distinct(ctx, FromRows(rows)))
	if err != nil {
		t.Fatal(err)
	}
	if r1, _, _ := SpillStats(); r1 == r0 {
		t.Fatal("distinct did not spill under a 1 KiB budget")
	}
	if !equalStrings(sortedRowStrings(got), want) {
		t.Fatalf("spilled distinct differs: %d rows, want %d", len(got), len(want))
	}
}

// A duplicate of a row emitted before the spill must not be emitted again
// by the partition drain.
func TestDistinctSpillNoReEmit(t *testing.T) {
	var rows []storage.Row
	// Enough distinct prefix rows to trip a small budget, then repeats of
	// the very first rows.
	for i := int64(0); i < 200; i++ {
		rows = append(rows, intRow(i))
	}
	for i := int64(0); i < 200; i++ {
		rows = append(rows, intRow(i))
	}
	ctx := WithBudget(context.Background(), Budget{Bytes: 256, Dir: t.TempDir()})
	got, err := Collect(Distinct(ctx, FromRows(rows)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("%d rows, want 200 (re-emission after spill?)", len(got))
	}
	seen := NewRowSet()
	for _, r := range got {
		if !seen.Add(r) {
			t.Fatalf("row %v emitted twice", r)
		}
	}
}

func TestRowSet(t *testing.T) {
	s := NewRowSet()
	if !s.Add(intRow(1, 2)) || s.Add(intRow(1, 2)) {
		t.Fatal("Add idempotence broken")
	}
	// INT and FLOAT representing the same number are equal (join
	// semantics) and must dedupe together.
	if s.Add(storage.Row{value.Float(1), value.Float(2)}) {
		t.Fatal("numeric-equal row not deduped")
	}
	if !s.Contains(intRow(1, 2)) || s.Contains(intRow(2, 1)) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 1 || s.Bytes() <= 0 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

// countdownCtx cancels itself after a fixed number of Err() polls — the
// fuse pattern from the seed's cancellation tests, here aimed at iterator
// checkpoints.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// Every checkpoint in the tree must propagate cancellation: for each fuse
// length up to the total poll count of a run, the evaluation must return
// context.Canceled (never hang, never succeed spuriously) — this walks
// the cancel through scan, build, spill, partition and probe loops.
func TestCancellationAtEveryCheckpoint(t *testing.T) {
	probe, build, _ := joinInputs(2000, 300)
	run := func(ctx context.Context) error {
		bctx := WithBudget(ctx, Budget{Bytes: 512, Dir: t.TempDir()})
		it := Distinct(bctx, HashJoin(bctx, FromRows(probe), FromRows(build), []int{1}, []int{0}, 2, 2))
		_, err := Collect(it)
		return err
	}
	if err := run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Count polls with an effectively infinite fuse.
	probeCtx := &countdownCtx{Context: context.Background(), left: 1 << 30}
	if err := run(probeCtx); err != nil {
		t.Fatal(err)
	}
	polls := 1<<30 - probeCtx.left
	if polls < 10 {
		t.Fatalf("only %d ctx polls in a spilling join+distinct; checkpoints missing", polls)
	}
	step := polls / 50
	if step == 0 {
		step = 1
	}
	for fuse := 0; fuse < polls; fuse += step {
		err := run(&countdownCtx{Context: context.Background(), left: fuse})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fuse %d of %d: err = %v, want context.Canceled", fuse, polls, err)
		}
	}
}

// The iter.spill fault point must surface as ErrInjected from both the
// join and the distinct spill paths, and service must resume once
// disarmed.
func TestSpillFaultInjection(t *testing.T) {
	probe, build, _ := joinInputs(2000, 300)
	ctx := WithBudget(context.Background(), Budget{Bytes: 512, Dir: t.TempDir()})

	plan, err := fault.Parse("iter.spill:err", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()

	_, jerr := Collect(HashJoin(ctx, FromRows(probe), FromRows(build), []int{1}, []int{0}, 2, 2))
	if !errors.Is(jerr, fault.ErrInjected) {
		t.Fatalf("join spill under fault: err = %v, want ErrInjected", jerr)
	}
	rows, _ := distinctInput(5000, 700)
	_, derr := Collect(Distinct(ctx, FromRows(rows)))
	if !errors.Is(derr, fault.ErrInjected) {
		t.Fatalf("distinct spill under fault: err = %v, want ErrInjected", derr)
	}

	fault.Disarm()
	if _, err := Collect(HashJoin(ctx, FromRows(probe), FromRows(build), []int{1}, []int{0}, 2, 2)); err != nil {
		t.Fatalf("join after disarm: %v", err)
	}
}

// Benchmark pinning satellite 2: RowSet dedup versus the seed's
// string-key dedup. Run with -benchmem; RowSet must allocate less.
func BenchmarkDedupRowSet(b *testing.B) {
	rows := benchRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewRowSet()
		n := 0
		for _, r := range rows {
			if s.Add(r) {
				n++
			}
		}
		if n != 500 {
			b.Fatal(n)
		}
	}
}

func BenchmarkDedupStringKey(b *testing.B) {
	rows := benchRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[string]bool, len(rows))
		n := 0
		for _, r := range rows {
			k := ""
			for _, v := range r {
				k += v.SQL() + "\x00"
			}
			if !seen[k] {
				seen[k] = true
				n++
			}
		}
		if n != 500 {
			b.Fatal(n)
		}
	}
}

func benchRows() []storage.Row {
	rows := make([]storage.Row, 0, 5000)
	for i := 0; i < 5000; i++ {
		k := int64(i % 500)
		rows = append(rows, storage.Row{value.Int(k), value.Str(fmt.Sprintf("title-%04d", k)), value.Int(k % 7)})
	}
	return rows
}
