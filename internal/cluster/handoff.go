package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"cqp/internal/wal"
)

// Membership transitions. A ring change (join or leave) moves through
// three phases, driven by whichever node received the admin request (the
// coordinator) and stamped with the new ring's epoch:
//
//	prepare ──► handoff ──► commit
//	   │            │
//	   └── abort ◄──┘  (any phase failure rolls every node back)
//
// prepare installs the next ring on every old and new member — nothing
// routes by it yet, but handoff targets become reachable and every node
// knows a transition is in flight (concurrent transitions are rejected
// here). handoff has each current member stream the owned records that
// move under the next ring to their new owners, in WAL-frame batches at a
// bounded rate; the target applies them version-guarded, so retries and
// replays are no-ops. commit atomically swaps the active ring, then — on
// each old owner, under the profile store's mutation lock — re-sweeps the
// moved shards, flushes any records mutated since the handoff snapshot to
// the new owner, waits for the ack, and only then evicts. The lock closes
// the straggler race: no mutation can land between the final flush and
// the eviction, which is what makes "zero acked-mutation loss" hold while
// the cluster keeps taking writes mid-transition.
//
// Reads never fail over the window: until commit, the old owner still
// serves moved shards (it keeps the records until eviction — the
// double-serve); after commit, the new owner has everything including the
// final sweep. A node that misses the commit (crashed, partitioned) keeps
// routing on the stale ring until its next probe gossips the new epoch or
// a wrong_epoch rejection forces a /cluster/state refetch.

// handoffTimeout bounds one membership transition end to end.
const handoffTimeout = 5 * time.Minute

// RingMessage is the /cluster/ring wire form.
type RingMessage struct {
	// Mode is prepare, commit, abort, or install.
	Mode string `json:"mode"`
	// State carries the next ring for prepare and install.
	State *RingState `json:"state,omitempty"`
	// Epoch identifies the transition for commit and abort.
	Epoch uint64 `json:"epoch,omitempty"`
}

// transitionMu serializes locally-coordinated transitions. Cross-node
// races are caught by Prepare's single-transition guard on every member.
var transitionMu sync.Mutex

// AddNode joins a new member: mints epoch+1, prepares it everywhere,
// hands off the shards the new ring assigns to the joiner, and commits.
// Idempotent when the node is already a member at the same URL.
func (n *Node) AddNode(ctx context.Context, id, url string) (RingState, error) {
	cur := n.State()
	if id == "" || url == "" {
		return cur, fmt.Errorf("cluster: join needs id and url")
	}
	if have, ok := cur.Members[id]; ok {
		if have == url {
			return cur, nil
		}
		return cur, fmt.Errorf("cluster: node %q already a member at %s", id, have)
	}
	st := cur.Clone()
	st.Members[id] = url
	st.Epoch = cur.Epoch + 1
	return n.transition(ctx, cur, st, nil)
}

// RemoveNode removes a member: mints epoch+1, prepares it everywhere,
// has the leaver hand off everything it owns, and commits. With force the
// leaver is never contacted (it is presumed dead); each survivor promotes
// the replicas it now owns at commit instead.
func (n *Node) RemoveNode(ctx context.Context, id string, force bool) (RingState, error) {
	cur := n.State()
	if _, ok := cur.Members[id]; !ok {
		return cur, fmt.Errorf("cluster: node %q is not a member", id)
	}
	if len(cur.Members) == 1 {
		return cur, fmt.Errorf("cluster: refusing to remove the last member")
	}
	st := cur.Clone()
	delete(st.Members, id)
	st.Epoch = cur.Epoch + 1
	var skip map[string]bool
	if force {
		skip = map[string]bool{id: true}
	}
	return n.transition(ctx, cur, st, skip)
}

// transition drives prepare → handoff → commit across the union of old
// and new members (minus skipped dead nodes). Any prepare or handoff
// failure aborts everywhere and leaves the old ring active.
func (n *Node) transition(ctx context.Context, cur, st RingState, skip map[string]bool) (RingState, error) {
	transitionMu.Lock()
	defer transitionMu.Unlock()
	ctx, cancel := context.WithTimeout(ctx, handoffTimeout)
	defer cancel()

	urls := make(map[string]string, len(cur.Members)+1)
	for id, u := range cur.Members {
		urls[id] = u
	}
	for id, u := range st.Members {
		urls[id] = u
	}
	var all []string
	for id := range urls {
		if !skip[id] {
			all = append(all, id)
		}
	}
	sort.Strings(all)

	abort := func() {
		for _, id := range all {
			n.ringCall(ctx, id, urls[id], RingMessage{Mode: "abort", Epoch: st.Epoch})
		}
	}

	for _, id := range all {
		if err := n.ringCall(ctx, id, urls[id], RingMessage{Mode: "prepare", State: &st}); err != nil {
			abort()
			return cur, fmt.Errorf("cluster: prepare epoch %d on %s: %w", st.Epoch, id, err)
		}
	}

	// Only current members can own shards that move.
	var sources []string
	for id := range cur.Members {
		if !skip[id] {
			sources = append(sources, id)
		}
	}
	sort.Strings(sources)
	for _, id := range sources {
		if err := n.handoffCall(ctx, id, urls[id], st.Epoch); err != nil {
			abort()
			return cur, fmt.Errorf("cluster: handoff epoch %d on %s: %w", st.Epoch, id, err)
		}
	}

	// Past this point the transition only rolls forward: a member that
	// misses its commit converges by epoch gossip or wrong_epoch refetch.
	var commitErrs []string
	for _, id := range all {
		if err := n.ringCall(ctx, id, urls[id], RingMessage{Mode: "commit", Epoch: st.Epoch}); err != nil {
			commitErrs = append(commitErrs, id)
			n.counter("cluster_commit_errors_total", "peer", id).Inc()
		}
	}
	if len(commitErrs) > 0 {
		return st, fmt.Errorf("cluster: epoch %d committed, but %v missed the commit (gossip will converge them)",
			st.Epoch, commitErrs)
	}
	return st, nil
}

// ringCall delivers one ring message, locally or over HTTP.
func (n *Node) ringCall(ctx context.Context, id, url string, msg RingMessage) error {
	if id == n.cfg.Self {
		_, err := n.HandleRingMessage(msg)
		return err
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	return n.postJSON(ctx, url+PathRing, body, 10*time.Second)
}

// handoffCall asks one member to run its handoff for the transition.
func (n *Node) handoffCall(ctx context.Context, id, url string, epoch uint64) error {
	if id == n.cfg.Self {
		_, err := n.RunHandoff(ctx, epoch)
		return err
	}
	body, err := json.Marshal(map[string]uint64{"epoch": epoch})
	if err != nil {
		return err
	}
	// No extra deadline: a large handoff legitimately takes a while (it is
	// rate-bounded); the transition ctx caps it.
	return n.postJSON(ctx, url+PathHandoff, body, 0)
}

// postJSON posts a JSON body and requires a 2xx answer.
func (n *Node) postJSON(ctx context.Context, url string, body []byte, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// HandleRingMessage dispatches one /cluster/ring message and returns the
// node's (possibly updated) active state for the response body.
func (n *Node) HandleRingMessage(msg RingMessage) (RingState, error) {
	var err error
	switch msg.Mode {
	case "prepare":
		if msg.State == nil {
			err = fmt.Errorf("cluster: prepare needs a ring state")
		} else {
			err = n.Prepare(*msg.State)
		}
	case "commit":
		err = n.Commit(msg.Epoch)
	case "abort":
		n.Abort(msg.Epoch)
	case "install":
		if msg.State == nil {
			err = fmt.Errorf("cluster: install needs a ring state")
		} else {
			_, err = n.AdoptIfNewer(*msg.State)
		}
	default:
		err = fmt.Errorf("cluster: unknown ring message mode %q", msg.Mode)
	}
	return n.State(), err
}

// Prepare installs the next ring for a pending transition. Handoff
// targets and joining followers become reachable peers now, so streams
// can start before the ring is active. Rejects overlapping transitions —
// this guard, enforced on every member, is what serializes concurrent
// coordinators cluster-wide.
func (n *Node) Prepare(st RingState) error {
	ring, err := st.Build()
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if st.Epoch <= n.state.Epoch {
		return fmt.Errorf("cluster: prepare epoch %d not newer than active %d", st.Epoch, n.state.Epoch)
	}
	if n.next != nil {
		if n.next.Epoch == st.Epoch {
			return nil // coordinator retry
		}
		return fmt.Errorf("cluster: transition to epoch %d already in progress", n.next.Epoch)
	}
	for id, url := range st.Members {
		if id == n.cfg.Self {
			continue
		}
		if _, ok := n.peers[id]; !ok {
			p := n.newPeer(id, url)
			n.peers[id] = p
			if n.cfg.Replicate {
				n.startPeer(p)
			}
		}
	}
	stc := st.Clone()
	n.next = &stc
	n.nextRing = ring
	return nil
}

// Abort drops a prepared transition (no-op if none or a different epoch)
// and forgets peers that were only reachable for its sake.
func (n *Node) Abort(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.next == nil || n.next.Epoch != epoch {
		return
	}
	n.next, n.nextRing = nil, nil
	for id, p := range n.peers {
		if _, ok := n.state.Members[id]; !ok {
			close(p.done)
			delete(n.peers, id)
		}
	}
}

// RunHandoff streams every owned record that moves under the prepared
// ring to its new owner, in WAL-frame batches at the configured bounded
// rate. The store keeps serving (and keeps the records — reads
// double-serve until commit evicts them); anything mutated after this
// snapshot is caught by commit's final sweep.
func (n *Node) RunHandoff(ctx context.Context, epoch uint64) (int, error) {
	n.mu.RLock()
	if n.next == nil || n.next.Epoch != epoch {
		cur := n.state.Epoch
		n.mu.RUnlock()
		return 0, fmt.Errorf("cluster: no prepared transition for epoch %d (active %d)", epoch, cur)
	}
	oldRing, newRing := n.ring, n.nextRing
	n.mu.RUnlock()
	if n.cfg.OwnedRecords == nil {
		return 0, nil
	}
	_, recs := n.cfg.OwnedRecords()
	moved := map[string][]wal.Record{}
	for _, rec := range recs {
		if oldRing.Owner(rec.ID) != n.cfg.Self {
			continue
		}
		if target := newRing.Owner(rec.ID); target != n.cfg.Self {
			moved[target] = append(moved[target], rec)
		}
	}
	targets := make([]string, 0, len(moved))
	for t := range moved {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	total := 0
	for _, target := range targets {
		sent, err := n.streamHandoff(ctx, epoch, target, moved[target])
		total += sent
		if err != nil {
			return total, fmt.Errorf("handoff to %s: %w", target, err)
		}
	}
	return total, nil
}

// streamHandoff ships one target's moved records in rate-bounded batches.
func (n *Node) streamHandoff(ctx context.Context, epoch uint64, target string, recs []wal.Record) (int, error) {
	url := n.PeerURL(target)
	if url == "" {
		return 0, fmt.Errorf("unknown target %q", target)
	}
	sent := 0
	for len(recs) > 0 {
		batch := recs
		if len(batch) > sendBatchMax {
			batch = batch[:sendBatchMax]
		}
		if err := n.postHandoffBatch(ctx, url, target, epoch, batch); err != nil {
			return sent, err
		}
		sent += len(batch)
		recs = recs[len(batch):]
		n.counter("cluster_handoff_records_total", "peer", target).Add(int64(len(batch)))
		if len(recs) > 0 && n.cfg.HandoffRate > 0 {
			pause := time.Duration(len(batch)) * time.Second / time.Duration(n.cfg.HandoffRate)
			select {
			case <-ctx.Done():
				return sent, ctx.Err()
			case <-time.After(pause):
			}
		}
	}
	return sent, nil
}

// postHandoffBatch delivers one frame batch with bounded retries.
func (n *Node) postHandoffBatch(ctx context.Context, url, target string, epoch uint64, batch []wal.Record) error {
	body := wal.EncodeRecords(batch)
	path := url + PathHandoffApply + "?from=" + n.cfg.Self + "&epoch=" + strconv.FormatUint(epoch, 10)
	var err error
	for try := 0; try < 5; try++ {
		if err = n.postJSON(ctx, path, body, 10*time.Second); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(try+1) * 200 * time.Millisecond):
		}
	}
	return err
}

// ApplyHandoffFrames is the target half of a handoff stream: decode the
// frames and install each record version-guarded into the local store.
// Accepted while the epoch matches either the prepared transition or the
// already-committed active ring (targets may commit before sources flush
// their final sweep).
func (n *Node) ApplyHandoffFrames(epoch uint64, body []byte) (int, error) {
	n.mu.RLock()
	ok := n.state.Epoch == epoch || (n.next != nil && n.next.Epoch == epoch)
	myEpoch := n.state.Epoch
	n.mu.RUnlock()
	if !ok {
		return 0, &errWrongEpoch{peer: n.cfg.Self, peerEpoch: myEpoch, sentEpoch: epoch}
	}
	if n.cfg.ApplyRecord == nil {
		return 0, fmt.Errorf("cluster: node has no store to apply handoff to")
	}
	recs, err := wal.DecodeFrames(body)
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		if err := n.cfg.ApplyRecord(rec); err != nil {
			return 0, fmt.Errorf("apply %s: %w", rec.ID, err)
		}
	}
	return len(recs), nil
}

// IsWrongEpoch classifies an error as an epoch-mismatch rejection.
func IsWrongEpoch(err error) bool {
	_, ok := err.(*errWrongEpoch)
	return ok
}

// Commit activates a prepared transition: swap the ring, drop departed
// peers, promote replicas this node now owns, then — under the store's
// mutation lock — flush and evict the moved shards, and finally degrade
// every peer to full-sync so replica placement rebuilds under the new
// ring. Idempotent for an already-active epoch.
func (n *Node) Commit(epoch uint64) error {
	n.mu.Lock()
	if n.state.Epoch == epoch {
		n.mu.Unlock()
		return nil
	}
	if n.next == nil || n.next.Epoch != epoch {
		cur := n.state.Epoch
		n.mu.Unlock()
		return fmt.Errorf("cluster: no prepared transition for epoch %d (active %d)", epoch, cur)
	}
	oldRing := n.ring
	n.state = *n.next
	n.ring = n.nextRing
	n.next, n.nextRing = nil, nil
	n.detached = !n.ring.Has(n.cfg.Self)
	newRing := n.ring
	for id, p := range n.peers {
		if _, ok := n.state.Members[id]; !ok {
			close(p.done)
			delete(n.peers, id)
		}
	}
	n.mu.Unlock()
	n.gauge("cluster_ring_epoch").Set(int64(epoch))
	n.counter("cluster_transitions_total").Inc()

	// Promote replica records this node owns under the new ring into its
	// store — this is how a force-removed dead node's shards come back to
	// life from the survivors' replicas. Version-guarded, so records that
	// also arrived by handoff are no-ops.
	if n.cfg.ApplyRecord != nil && !n.detached {
		promote := n.replica.OwnedBy(func(id string) bool {
			return newRing.Owner(id) == n.cfg.Self && oldRing.Owner(id) != n.cfg.Self
		})
		for _, rec := range promote {
			if err := n.cfg.ApplyRecord(rec); err != nil {
				n.counter("cluster_promote_errors_total").Inc()
			}
		}
		if len(promote) > 0 {
			n.counter("cluster_promoted_records_total").Add(int64(len(promote)))
		}
	}

	// Final sweep: under the store's mutation lock, re-read the moved
	// shards (catching every mutation acked since the handoff snapshot),
	// flush them to their new owners, and evict only after the flush acks.
	if n.cfg.SweepAndEvict != nil {
		movedPred := func(id string) bool {
			return oldRing.Owner(id) == n.cfg.Self && newRing.Owner(id) != n.cfg.Self
		}
		evicted, err := n.cfg.SweepAndEvict(movedPred, func(recs []wal.Record) error {
			return n.flushMoved(newRing, epoch, recs)
		})
		if err != nil {
			// The records stay local — redundant but safe; anti-entropy and
			// the new owner's handoff copy keep serving correct data.
			n.counter("cluster_sweep_errors_total").Inc()
		} else if evicted > 0 {
			n.counter("cluster_evicted_records_total").Add(int64(evicted))
		}
	}

	n.MarkAllNeedSync()
	return nil
}

// flushMoved delivers the final-sweep records to their new owners. Runs
// under the store's mutation lock, so retries are kept tight.
func (n *Node) flushMoved(newRing *Ring, epoch uint64, recs []wal.Record) error {
	byOwner := map[string][]wal.Record{}
	for _, rec := range recs {
		byOwner[newRing.Owner(rec.ID)] = append(byOwner[newRing.Owner(rec.ID)], rec)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for target, batch := range byOwner {
		url := n.PeerURL(target)
		if url == "" {
			return fmt.Errorf("unknown new owner %q", target)
		}
		if err := n.postHandoffBatch(ctx, url, target, epoch, batch); err != nil {
			return err
		}
	}
	return nil
}

// AdoptIfNewer installs a strictly newer ring state wholesale — the
// convergence path for nodes that missed a transition (rebooted on stale
// static peers, partitioned through a commit). Refused mid-transition;
// the coordinator's commit supersedes gossip.
func (n *Node) AdoptIfNewer(st RingState) (bool, error) {
	ring, err := st.Build()
	if err != nil {
		return false, err
	}
	n.mu.Lock()
	if st.Epoch <= n.state.Epoch {
		n.mu.Unlock()
		return false, nil
	}
	if n.next != nil {
		// Mid-transition. Seeing the prepared epoch already active on a
		// peer means the coordinator's commit wave has started; roll
		// forward now rather than 409ing traffic from committed peers
		// until our own commit call arrives (it stays a no-op). A state
		// from some OTHER epoch while prepared is a conflict — leave it
		// for the coordinator to resolve.
		next := n.next.Epoch
		n.mu.Unlock()
		if st.Epoch == next {
			return true, n.Commit(next)
		}
		return false, nil
	}
	n.state = st.Clone()
	n.ring = ring
	n.detached = !ring.Has(n.cfg.Self)
	for id, url := range st.Members {
		if id == n.cfg.Self {
			continue
		}
		if _, ok := n.peers[id]; !ok {
			p := n.newPeer(id, url)
			n.peers[id] = p
			if n.cfg.Replicate {
				n.startPeer(p)
			}
		}
	}
	for id, p := range n.peers {
		if _, ok := st.Members[id]; !ok {
			close(p.done)
			delete(n.peers, id)
		}
	}
	n.mu.Unlock()
	n.gauge("cluster_ring_epoch").Set(int64(st.Epoch))
	n.counter("cluster_ring_adoptions_total").Inc()
	n.MarkAllNeedSync()
	return true, nil
}
