package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cqp/internal/obs"
	"cqp/internal/resilience"
	"cqp/internal/wal"
)

// Internal cluster paths, mounted by the server on every node.
const (
	PathPing      = "/cluster/ping"
	PathReplicate = "/cluster/replicate"
	PathSync      = "/cluster/sync"
)

// Config wires a Node into a static cluster.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers maps every node ID (including Self) to its base URL, e.g.
	// "n1" -> "http://10.0.0.1:8344".
	Peers map[string]string
	// VNodes is the virtual nodes per peer (0 = DefaultVirtualNodes).
	VNodes int
	// ProbeInterval is the peer health-probe period (default 500ms). It is
	// also the failover detection bound: a dead peer is circuit-broken
	// within one failed probe or one failed proxy attempt, whichever
	// comes first.
	ProbeInterval time.Duration
	// Replicate enables WAL-frame shipping to followers. Routing (proxying
	// to owners) works without it; failover reads do not.
	Replicate bool
	// SyncSource supplies the catch-up payload served to (and pushed at) a
	// peer: this node's version clock and the live records it owns whose
	// follower is that peer.
	SyncSource func(peer string) (clock uint64, recs []wal.Record)
	// Metrics receives the cluster gauges and counters (nil = none).
	Metrics *obs.Registry
	// Client overrides the HTTP client used for probes, replication and
	// sync (tests inject httptest clients).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, fmt.Errorf("cluster: config needs Self")
	}
	if _, ok := c.Peers[c.Self]; !ok {
		return c, fmt.Errorf("cluster: self %q missing from peer list", c.Self)
	}
	for id, url := range c.Peers {
		if url == "" {
			return c, fmt.Errorf("cluster: peer %q has no URL", id)
		}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			// Replication and proxying reuse connections; the short dial
			// timeout bounds failover latency when a peer host blackholes
			// instead of refusing.
			DialContext:         (&net.Dialer{Timeout: time.Second}).DialContext,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c, nil
}

// Node is one cluster member's local view: the shared ring, per-peer
// health (a one-strike circuit breaker per peer, settled by both the
// background prober and live proxy attempts), the replication senders,
// and the replica store for the shards this node follows.
type Node struct {
	cfg     Config
	ring    *Ring
	replica *ReplicaStore
	peers   map[string]*peerState // every peer except self
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// peerState is this node's view of one remote peer.
type peerState struct {
	id, url string
	// breaker is the peer's reachability state: one failed probe or proxy
	// opens it (instant failover), a half-open probe success closes it.
	breaker *resilience.Breaker
	// sender state (Replicate only).
	ch       chan wal.Record
	needSync chan struct{} // capacity 1; a pending token forces a full sync
	pending  chanCounter
}

// chanCounter is a tiny atomic counter for queue+in-flight lag.
type chanCounter struct {
	mu sync.Mutex
	n  int64
	// acked is the follower's last reported applied version.
	acked uint64
}

func (c *chanCounter) add(d int64) {
	c.mu.Lock()
	c.n += d
	if c.n < 0 {
		c.n = 0
	}
	c.mu.Unlock()
}

func (c *chanCounter) get() (int64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, c.acked
}

func (c *chanCounter) setAcked(v uint64) {
	c.mu.Lock()
	if v > c.acked {
		c.acked = v
	}
	c.mu.Unlock()
}

// New validates the config and builds the node (ring, breakers, senders).
// Call Start to begin probing and replicating, Close to stop.
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		ring:    ring,
		replica: NewReplicaStore(),
		peers:   make(map[string]*peerState),
		stop:    make(chan struct{}),
	}
	for id, url := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		id := id
		n.peers[id] = &peerState{
			id:  id,
			url: url,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: 1,
				OpenTimeout:      cfg.ProbeInterval,
				HalfOpenProbes:   1,
				OnTransition: func(_, to resilience.BreakerState) {
					up := int64(0)
					if to != resilience.Open {
						up = 1
					}
					n.gauge("cluster_peer_up", "peer", id).Set(up)
				},
			}),
			ch:       make(chan wal.Record, 4096),
			needSync: make(chan struct{}, 1),
		}
		n.gauge("cluster_peer_up", "peer", id).Set(1)
	}
	return n, nil
}

// Start launches the health prober and, when replication is enabled, one
// sender per peer.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.probeLoop()
	if n.cfg.Replicate {
		for _, p := range n.peers {
			n.wg.Add(1)
			go n.sendLoop(p)
		}
	}
}

// Close stops the background loops and waits for them.
func (n *Node) Close() {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.cfg.Self }

// Ring returns the shared consistent-hash ring.
func (n *Node) Ring() *Ring { return n.ring }

// Replica returns the node's replica store.
func (n *Node) Replica() *ReplicaStore { return n.replica }

// Client returns the cluster's HTTP client (shared by the server's proxy).
func (n *Node) Client() *http.Client { return n.cfg.Client }

// Owner returns the node that owns id.
func (n *Node) Owner(id string) string { return n.ring.Owner(id) }

// Follower returns the replica holder for id ("" on a 1-node ring).
func (n *Node) Follower(id string) string { return n.ring.Follower(id) }

// IsOwner reports whether this node owns id.
func (n *Node) IsOwner(id string) bool { return n.ring.Owner(id) == n.cfg.Self }

// IsFollower reports whether this node is the replica holder for id.
func (n *Node) IsFollower(id string) bool { return n.ring.Follower(id) == n.cfg.Self }

// PeerURL returns the base URL for a peer ID ("" when unknown).
func (n *Node) PeerURL(id string) string { return n.cfg.Peers[id] }

// Replicating reports whether WAL-frame shipping is enabled.
func (n *Node) Replicating() bool { return n.cfg.Replicate }

// Up reports whether peer is believed reachable: its breaker is not open.
// Half-open counts as up — the next request is the probe, and its outcome
// settles the breaker.
func (n *Node) Up(peer string) bool {
	p, ok := n.peers[peer]
	if !ok {
		return peer == n.cfg.Self
	}
	return p.breaker.State() != resilience.Open
}

// ReportPeerFailure settles a live proxy attempt against peer as failed,
// opening its breaker immediately — failover does not wait for the next
// background probe.
func (n *Node) ReportPeerFailure(peer string) {
	if p, ok := n.peers[peer]; ok {
		if p.breaker.Allow() {
			p.breaker.Failure()
		}
		n.counter("cluster_peer_failures_total", "peer", peer).Inc()
	}
}

// ReportPeerSuccess settles a live proxy attempt as successful.
func (n *Node) ReportPeerSuccess(peer string) {
	if p, ok := n.peers[peer]; ok {
		if p.breaker.Allow() {
			p.breaker.Success()
		}
	}
}

// PeerStatus is one peer's health and replication view for /healthz.
type PeerStatus struct {
	ID           string `json:"id"`
	Up           bool   `json:"up"`
	LagRecords   int64  `json:"lag_records"`
	AckedVersion uint64 `json:"acked_version"`
}

// Status snapshots the node's cluster view for /healthz: per-peer
// reachability and replication lag (queued + unacked records per
// follower), plus replica occupancy. Peers are sorted by ID.
type Status struct {
	Self            string       `json:"node_id"`
	Replicating     bool         `json:"replicating"`
	ReplicaProfiles int          `json:"replica_profiles"`
	Peers           []PeerStatus `json:"peers"`
}

func (n *Node) Status() Status {
	st := Status{
		Self:            n.cfg.Self,
		Replicating:     n.cfg.Replicate,
		ReplicaProfiles: n.replica.Len(),
	}
	for id, p := range n.peers {
		lag, acked := p.pending.get()
		n.gauge("cluster_replication_lag_records", "peer", id).Set(lag)
		st.Peers = append(st.Peers, PeerStatus{
			ID:           id,
			Up:           n.Up(id),
			LagRecords:   lag,
			AckedVersion: acked,
		})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}

// probeLoop pings every peer each interval, settling its breaker: a dead
// peer opens within one interval; a recovered peer closes on the first
// half-open probe success.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			for _, p := range n.peers {
				if !p.breaker.Allow() {
					continue // open; wait out the timeout
				}
				if n.ping(p) {
					p.breaker.Success()
				} else {
					p.breaker.Failure()
					n.counter("cluster_probe_failures_total", "peer", p.id).Inc()
				}
			}
		}
	}
}

// ping checks one peer's readiness: 200 on /cluster/ping means recovered,
// caught up, and serving.
func (n *Node) ping(p *peerState) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+PathPing, nil)
	if err != nil {
		return false
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// CatchUp pulls a full sync from every peer: each peer returns its clock
// and the live records it owns that this node follows, which replace the
// local replica view of that peer's shards. Unreachable peers are skipped
// after attempts tries — a cold-start cluster must not deadlock waiting
// for peers that are themselves waiting — and the error reports them.
func (n *Node) CatchUp(ctx context.Context, attempts int) error {
	if attempts <= 0 {
		attempts = 5
	}
	var unreachable []string
	for id, p := range n.peers {
		var err error
		for try := 0; try < attempts; try++ {
			if err = n.pullSync(ctx, p); err == nil {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(200 * time.Millisecond):
			}
		}
		if err != nil {
			unreachable = append(unreachable, id)
		} else {
			n.counter("cluster_catchup_syncs_total", "peer", id).Inc()
		}
	}
	if len(unreachable) > 0 {
		sort.Strings(unreachable)
		return fmt.Errorf("cluster: catch-up skipped unreachable peers %v", unreachable)
	}
	return nil
}

// pullSync fetches one peer's catch-up payload and applies it.
func (n *Node) pullSync(ctx context.Context, p *peerState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.url+PathSync+"?node="+n.cfg.Self, nil)
	if err != nil {
		return err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: sync from %s: status %d", p.id, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	clock, recs, err := DecodeSyncPayload(body)
	if err != nil {
		return fmt.Errorf("cluster: sync from %s: %w", p.id, err)
	}
	owner := p.id
	n.replica.FullSync(owner, clock, recs, func(id string) bool { return n.ring.Owner(id) == owner })
	return nil
}

// EncodeSyncPayload frames a catch-up payload: the owner's version clock
// followed by the live records as WAL frames.
func EncodeSyncPayload(clock uint64, recs []wal.Record) []byte {
	buf := make([]byte, 8, 8+len(recs)*64)
	binary.LittleEndian.PutUint64(buf, clock)
	for _, r := range recs {
		buf = wal.EncodeFrame(buf, r)
	}
	return buf
}

// DecodeSyncPayload is EncodeSyncPayload's inverse.
func DecodeSyncPayload(buf []byte) (clock uint64, recs []wal.Record, err error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("sync payload %d bytes, need 8-byte clock", len(buf))
	}
	clock = binary.LittleEndian.Uint64(buf)
	recs, err = wal.DecodeFrames(buf[8:])
	return clock, recs, err
}

func (n *Node) gauge(name string, labels ...string) *obs.Gauge {
	if n.cfg.Metrics == nil {
		return nil
	}
	return n.cfg.Metrics.Gauge(name, labels...)
}

func (n *Node) counter(name string, labels ...string) *obs.Counter {
	if n.cfg.Metrics == nil {
		return nil
	}
	return n.cfg.Metrics.Counter(name, labels...)
}
