package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cqp/internal/obs"
	"cqp/internal/resilience"
	"cqp/internal/wal"
)

// Internal cluster paths, mounted by the server on every node.
const (
	PathPing         = "/cluster/ping"
	PathReplicate    = "/cluster/replicate"
	PathSync         = "/cluster/sync"
	PathState        = "/cluster/state"
	PathRing         = "/cluster/ring"
	PathHandoff      = "/cluster/handoff"
	PathHandoffApply = "/cluster/handoff/apply"
	PathJoin         = "/cluster/join"
	PathLeave        = "/cluster/leave"
)

// Config wires a Node into a cluster. Peers is the boot membership (ring
// epoch 0); joins and leaves evolve it from there.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers maps every boot-time node ID (including Self) to its base URL,
	// e.g. "n1" -> "http://10.0.0.1:8344".
	Peers map[string]string
	// VNodes is the virtual nodes per peer (0 = DefaultVirtualNodes).
	VNodes int
	// Replicas is the replication factor R: the owner plus R−1 followers
	// hold each profile (0 = DefaultReplicas). Every node must boot with
	// the same value; joiners adopt the cluster's value from the ring
	// broadcast.
	Replicas int
	// PeerStrikes is how many consecutive probe/proxy failures open a
	// peer's breaker (0 = 1, the instant-failover default). Raise it on
	// lossy networks where a single dropped probe should not flap a
	// healthy peer into stale_replica reads.
	PeerStrikes int
	// ProbeInterval is the peer health-probe period (default 500ms). It is
	// also the failover detection bound: a dead peer is circuit-broken
	// within PeerStrikes failed probes or proxy attempts, whichever
	// comes first.
	ProbeInterval time.Duration
	// Replicate enables WAL-frame shipping to followers. Routing (proxying
	// to owners) works without it; failover reads do not.
	Replicate bool
	// HandoffRate bounds shard handoff streaming in records per second
	// (0 = 20000). The bound keeps a membership change from starving
	// foreground traffic of bandwidth.
	HandoffRate int
	// AntiEntropy is the period of the background owner↔follower digest
	// diff that detects and repairs silently diverged replicas (0 = 5s;
	// negative disables). Only runs when Replicate is set.
	AntiEntropy time.Duration
	// SyncSource supplies the catch-up payload served to (and pushed at) a
	// peer: this node's version clock and the live records it owns whose
	// follower set includes that peer.
	SyncSource func(peer string) (clock uint64, recs []wal.Record)
	// OwnedRecords snapshots this node's whole profile store as WAL
	// records (clock first) — the handoff source set.
	OwnedRecords func() (clock uint64, recs []wal.Record)
	// ApplyRecord installs one handed-off or promoted record into this
	// node's profile store, preserving its version (version-guarded, so
	// redelivery and stale records are no-ops).
	ApplyRecord func(rec wal.Record) error
	// SweepAndEvict atomically re-reads the records matching moved from
	// the profile store, hands them to flush, and — only if flush
	// succeeds — evicts them. It runs under the store's mutation lock, so
	// no mutation can slip between the final handoff frame and the
	// eviction.
	SweepAndEvict func(moved func(id string) bool, flush func(recs []wal.Record) error) (int, error)
	// Metrics receives the cluster gauges and counters (nil = none).
	Metrics *obs.Registry
	// Client overrides the HTTP client used for probes, replication and
	// sync (tests inject httptest clients).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, fmt.Errorf("cluster: config needs Self")
	}
	if _, ok := c.Peers[c.Self]; !ok {
		return c, fmt.Errorf("cluster: self %q missing from peer list", c.Self)
	}
	for id, url := range c.Peers {
		if url == "" {
			return c, fmt.Errorf("cluster: peer %q has no URL", id)
		}
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.PeerStrikes <= 0 {
		c.PeerStrikes = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.HandoffRate <= 0 {
		c.HandoffRate = 20000
	}
	if c.AntiEntropy == 0 {
		c.AntiEntropy = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			// Replication and proxying reuse connections; the short dial
			// timeout bounds failover latency when a peer host blackholes
			// instead of refusing.
			DialContext:         (&net.Dialer{Timeout: time.Second}).DialContext,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c, nil
}

// Node is one cluster member's local view: the active epoch's ring, the
// pending next ring during a membership transition, per-peer health (a
// configurable-strikes circuit breaker per peer, settled by both the
// background prober and live proxy attempts), the replication senders,
// and the replica store for the shards this node follows.
type Node struct {
	cfg     Config
	replica *ReplicaStore
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	mu       sync.RWMutex
	state    RingState // active membership
	ring     *Ring     // built from state
	next     *RingState
	nextRing *Ring // built from next during a transition
	detached bool  // self committed out of the ring (after leave)
	peers    map[string]*peerState
}

// peerState is this node's view of one remote peer.
type peerState struct {
	id, url string
	// breaker is the peer's reachability state: PeerStrikes failed probes
	// or proxies open it, a half-open probe success closes it.
	breaker *resilience.Breaker
	// sender state (Replicate only).
	ch       chan wal.Record
	needSync chan struct{} // capacity 1; a pending token forces a full sync
	pending  chanCounter
	done     chan struct{} // closed when the peer leaves the ring
}

// chanCounter is a tiny atomic counter for queue+in-flight lag.
type chanCounter struct {
	mu sync.Mutex
	n  int64
	// acked is the follower's last reported applied version.
	acked uint64
}

func (c *chanCounter) add(d int64) {
	c.mu.Lock()
	c.n += d
	if c.n < 0 {
		c.n = 0
	}
	c.mu.Unlock()
}

func (c *chanCounter) get() (int64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, c.acked
}

func (c *chanCounter) setAcked(v uint64) {
	c.mu.Lock()
	if v > c.acked {
		c.acked = v
	}
	c.mu.Unlock()
}

// New validates the config and builds the node (ring, breakers, senders).
// Call Start to begin probing and replicating, Close to stop.
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	state := RingState{
		Epoch:    0,
		Replicas: cfg.Replicas,
		Members:  map[string]string{},
		VNodes:   cfg.VNodes,
	}
	for id, url := range cfg.Peers {
		state.Members[id] = url
	}
	ring, err := state.Build()
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		state:   state,
		ring:    ring,
		replica: NewReplicaStore(),
		peers:   make(map[string]*peerState),
		stop:    make(chan struct{}),
	}
	for id, url := range state.Members {
		if id == cfg.Self {
			continue
		}
		n.peers[id] = n.newPeer(id, url)
	}
	n.gauge("cluster_ring_epoch").Set(0)
	return n, nil
}

// newPeer builds one peer's breaker and sender state. Callers holding
// n.mu add it to n.peers; startPeer launches its sender.
func (n *Node) newPeer(id, url string) *peerState {
	p := &peerState{
		id:  id,
		url: url,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: n.cfg.PeerStrikes,
			OpenTimeout:      n.cfg.ProbeInterval,
			HalfOpenProbes:   1,
			OnTransition: func(_, to resilience.BreakerState) {
				up := int64(0)
				if to != resilience.Open {
					up = 1
				} else {
					n.counter("cluster_breaker_flaps_total", "peer", id).Inc()
				}
				n.gauge("cluster_peer_up", "peer", id).Set(up)
			},
		}),
		ch:       make(chan wal.Record, 4096),
		needSync: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	n.gauge("cluster_peer_up", "peer", id).Set(1)
	return p
}

// Start launches the health prober, the anti-entropy loop, and — when
// replication is enabled — one sender per peer.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.probeLoop()
	if n.cfg.Replicate {
		n.mu.RLock()
		for _, p := range n.peers {
			n.startPeer(p)
		}
		n.mu.RUnlock()
		if n.cfg.AntiEntropy > 0 {
			n.wg.Add(1)
			go n.antiEntropyLoop()
		}
	}
}

// startPeer launches the peer's replication sender.
func (n *Node) startPeer(p *peerState) {
	n.wg.Add(1)
	go n.sendLoop(p)
}

// Close stops the background loops and waits for them.
func (n *Node) Close() {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.cfg.Self }

// Ring returns the active epoch's consistent-hash ring (immutable; a
// membership change installs a fresh one).
func (n *Node) Ring() *Ring {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring
}

// State returns the active membership (epoch, replicas, members).
func (n *Node) State() RingState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.state.Clone()
}

// Epoch returns the active ring version.
func (n *Node) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.state.Epoch
}

// Detached reports whether this node has left the ring (after a committed
// leave it keeps serving as a stateless proxy until shut down).
func (n *Node) Detached() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.detached
}

// Replica returns the node's replica store.
func (n *Node) Replica() *ReplicaStore { return n.replica }

// Client returns the cluster's HTTP client (shared by the server's proxy).
func (n *Node) Client() *http.Client { return n.cfg.Client }

// Owner returns the node that owns id.
func (n *Node) Owner(id string) string { return n.Ring().Owner(id) }

// Follower returns the first replica holder for id ("" on a 1-node ring).
func (n *Node) Follower(id string) string { return n.Ring().Follower(id) }

// Followers returns the replica holders for id in failover order.
func (n *Node) Followers(id string) []string { return n.Ring().Followers(id) }

// IsOwner reports whether this node owns id.
func (n *Node) IsOwner(id string) bool { return n.Ring().Owner(id) == n.cfg.Self }

// IsFollower reports whether this node is a replica holder for id.
func (n *Node) IsFollower(id string) bool { return n.Ring().HasFollower(id, n.cfg.Self) }

// PeerURL returns the base URL for a node ID ("" when unknown). During a
// transition the pending ring's members resolve too, so handoff targets
// and joining followers are reachable before commit.
func (n *Node) PeerURL(id string) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if url, ok := n.state.Members[id]; ok {
		return url
	}
	if n.next != nil {
		return n.next.Members[id]
	}
	return ""
}

// Replicating reports whether WAL-frame shipping is enabled.
func (n *Node) Replicating() bool { return n.cfg.Replicate }

// peer looks up a peer's state by ID.
func (n *Node) peer(id string) (*peerState, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.peers[id]
	return p, ok
}

// snapshotPeers returns the current peer set (stable copies; the states
// themselves are shared and internally synchronized).
func (n *Node) snapshotPeers() []*peerState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	return out
}

// Up reports whether peer is believed reachable: its breaker is not open.
// Half-open counts as up — the next request is the probe, and its outcome
// settles the breaker.
func (n *Node) Up(peer string) bool {
	p, ok := n.peer(peer)
	if !ok {
		return peer == n.cfg.Self
	}
	return p.breaker.State() != resilience.Open
}

// ReportPeerFailure settles a live proxy attempt against peer as failed —
// with the default single strike the breaker opens immediately, so
// failover does not wait for the next background probe.
func (n *Node) ReportPeerFailure(peer string) {
	if p, ok := n.peer(peer); ok {
		if p.breaker.Allow() {
			p.breaker.Failure()
		}
		n.counter("cluster_peer_failures_total", "peer", peer).Inc()
	}
}

// ReportPeerSuccess settles a live proxy attempt as successful.
func (n *Node) ReportPeerSuccess(peer string) {
	if p, ok := n.peer(peer); ok {
		if p.breaker.Allow() {
			p.breaker.Success()
		}
	}
}

// PeerStatus is one peer's health and replication view for /healthz.
type PeerStatus struct {
	ID           string `json:"id"`
	Up           bool   `json:"up"`
	LagRecords   int64  `json:"lag_records"`
	AckedVersion uint64 `json:"acked_version"`
}

// Status snapshots the node's cluster view for /healthz: the ring epoch
// and size, per-peer reachability and replication lag (queued + unacked
// records per follower), plus replica occupancy. Peers are sorted by ID.
type Status struct {
	Self            string       `json:"node_id"`
	Epoch           uint64       `json:"epoch"`
	Replicas        int          `json:"replicas"`
	Members         int          `json:"members"`
	Transitioning   bool         `json:"transitioning,omitempty"`
	Detached        bool         `json:"detached,omitempty"`
	Replicating     bool         `json:"replicating"`
	ReplicaProfiles int          `json:"replica_profiles"`
	Peers           []PeerStatus `json:"peers"`
}

func (n *Node) Status() Status {
	n.mu.RLock()
	st := Status{
		Self:            n.cfg.Self,
		Epoch:           n.state.Epoch,
		Replicas:        n.ring.Replicas(),
		Members:         len(n.state.Members),
		Transitioning:   n.next != nil,
		Detached:        n.detached,
		Replicating:     n.cfg.Replicate,
		ReplicaProfiles: n.replica.Len(),
	}
	peers := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.RUnlock()
	for _, p := range peers {
		lag, acked := p.pending.get()
		n.gauge("cluster_replication_lag_records", "peer", p.id).Set(lag)
		st.Peers = append(st.Peers, PeerStatus{
			ID:           p.id,
			Up:           n.Up(p.id),
			LagRecords:   lag,
			AckedVersion: acked,
		})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}

// probeLoop pings every peer each interval, settling its breaker, and
// gossips ring epochs: a peer that answers with a newer epoch is pulled
// from, one with an older epoch is pushed the current ring — so a node
// that rebooted on a stale static peer list converges within a probe
// interval without any traffic hitting wrong_epoch first.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			for _, p := range n.snapshotPeers() {
				if !p.breaker.Allow() {
					continue // open; wait out the timeout
				}
				ok, peerEpoch := n.ping(p)
				if ok {
					p.breaker.Success()
					n.gossipEpoch(p, peerEpoch)
				} else {
					p.breaker.Failure()
					n.counter("cluster_probe_failures_total", "peer", p.id).Inc()
				}
			}
		}
	}
}

// gossipEpoch reconciles ring versions after a successful probe.
func (n *Node) gossipEpoch(p *peerState, peerEpoch uint64) {
	mine := n.Epoch()
	switch {
	case peerEpoch > mine:
		n.RefreshFromPeer(p.id)
	case peerEpoch < mine:
		n.pushRing(p)
	}
}

// pushRing installs this node's active ring on a lagging peer.
func (n *Node) pushRing(p *peerState) {
	st := n.State()
	body, err := json.Marshal(RingMessage{Mode: "install", State: &st})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	n.postJSON(ctx, p.url+PathRing, body, 0)
}

// ping checks one peer's readiness and returns its ring epoch: 200 on
// /cluster/ping means recovered, caught up, and serving.
func (n *Node) ping(p *peerState) (bool, uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+PathPing, nil)
	if err != nil {
		return false, 0
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return false, 0
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false, 0
	}
	var pong struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&pong); err != nil {
		return true, n.Epoch() // old peer without epoch in the pong
	}
	return true, pong.Epoch
}

// RefreshFromPeer refetches peer's /cluster/state and adopts its ring if
// it is a newer epoch — the wrong_epoch recovery path.
func (n *Node) RefreshFromPeer(peer string) bool {
	url := n.PeerURL(peer)
	if url == "" {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+PathState, nil)
	if err != nil {
		return false
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var st struct {
		RingState RingState `json:"ring"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return false
	}
	adopted, err := n.AdoptIfNewer(st.RingState)
	if err != nil {
		n.counter("cluster_ring_adopt_errors_total").Inc()
		return false
	}
	return adopted
}

// CatchUp first adopts the newest ring any peer advertises (a node
// rebooted on a stale static peer list must route by the live membership,
// not its boot flags), then pulls a full sync from every peer: each peer
// returns its clock and the live records it owns that this node follows,
// which replace the local replica view of that peer's shards. Unreachable
// peers are skipped after attempts tries — a cold-start cluster must not
// deadlock waiting for peers that are themselves waiting — and the error
// reports them.
func (n *Node) CatchUp(ctx context.Context, attempts int) error {
	if attempts <= 0 {
		attempts = 5
	}
	for _, p := range n.snapshotPeers() {
		n.RefreshFromPeer(p.id)
	}
	var unreachable []string
	for _, p := range n.snapshotPeers() {
		var err error
		for try := 0; try < attempts; try++ {
			if err = n.pullSync(ctx, p); err == nil {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(200 * time.Millisecond):
			}
		}
		if err != nil {
			unreachable = append(unreachable, p.id)
		} else {
			n.counter("cluster_catchup_syncs_total", "peer", p.id).Inc()
		}
	}
	if len(unreachable) > 0 {
		sort.Strings(unreachable)
		return fmt.Errorf("cluster: catch-up skipped unreachable peers %v", unreachable)
	}
	return nil
}

// pullSync fetches one peer's catch-up payload and applies it.
func (n *Node) pullSync(ctx context.Context, p *peerState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.url+PathSync+"?node="+n.cfg.Self, nil)
	if err != nil {
		return err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: sync from %s: status %d", p.id, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	clock, recs, err := DecodeSyncPayload(body)
	if err != nil {
		return fmt.Errorf("cluster: sync from %s: %w", p.id, err)
	}
	owner := p.id
	n.replica.FullSync(owner, clock, recs, func(id string) bool { return n.Owner(id) == owner })
	return nil
}

// EncodeSyncPayload frames a catch-up payload: the owner's version clock
// followed by the live records as WAL frames.
func EncodeSyncPayload(clock uint64, recs []wal.Record) []byte {
	buf := make([]byte, 8, 8+len(recs)*64)
	binary.LittleEndian.PutUint64(buf, clock)
	for _, r := range recs {
		buf = wal.EncodeFrame(buf, r)
	}
	return buf
}

// DecodeSyncPayload is EncodeSyncPayload's inverse.
func DecodeSyncPayload(buf []byte) (clock uint64, recs []wal.Record, err error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("sync payload %d bytes, need 8-byte clock", len(buf))
	}
	clock = binary.LittleEndian.Uint64(buf)
	recs, err = wal.DecodeFrames(buf[8:])
	return clock, recs, err
}

func (n *Node) gauge(name string, labels ...string) *obs.Gauge {
	if n.cfg.Metrics == nil {
		return nil
	}
	return n.cfg.Metrics.Gauge(name, labels...)
}

func (n *Node) counter(name string, labels ...string) *obs.Counter {
	if n.cfg.Metrics == nil {
		return nil
	}
	return n.cfg.Metrics.Counter(name, labels...)
}
