package cluster

import (
	"testing"

	"cqp/internal/wal"
)

func rput(v uint64, id, text string) wal.Record {
	return wal.Record{Op: wal.OpPut, ID: id, Text: text, Version: v, UpdatedAt: int64(v)}
}

func rdel(v uint64, id string) wal.Record {
	return wal.Record{Op: wal.OpDelete, ID: id, Version: v, UpdatedAt: int64(v)}
}

func TestReplicaApplyVersionGuard(t *testing.T) {
	rs := NewReplicaStore()
	if !rs.Apply("n1", rput(3, "u1", "new")) {
		t.Fatal("fresh record rejected")
	}
	// Older and equal versions are stale duplicates.
	if rs.Apply("n1", rput(2, "u1", "old")) || rs.Apply("n1", rput(3, "u1", "dup")) {
		t.Fatal("stale record applied")
	}
	rec, ok := rs.Get("u1")
	if !ok || rec.Text != "new" {
		t.Fatalf("got %+v ok=%v", rec, ok)
	}
	if rs.Applied("n1") != 3 {
		t.Fatalf("applied = %d, want 3", rs.Applied("n1"))
	}
}

// TestReplicaTombstoneBlocksResurrection: a reordered older put must not
// bring back a deleted profile.
func TestReplicaTombstoneBlocksResurrection(t *testing.T) {
	rs := NewReplicaStore()
	rs.Apply("n1", rput(1, "u1", "alive"))
	rs.Apply("n1", rdel(5, "u1"))
	if rs.Apply("n1", rput(4, "u1", "zombie")) {
		t.Fatal("put below tombstone version applied")
	}
	if _, ok := rs.Get("u1"); ok {
		t.Fatal("deleted profile resurrected")
	}
	if rs.Len() != 0 {
		t.Fatalf("Len = %d, want 0", rs.Len())
	}
}

// TestReplicaFullSync: absence from a snapshot deletes superseded entries
// for the syncing owner's keys; newer-than-clock entries and other
// owners' keys survive.
func TestReplicaFullSync(t *testing.T) {
	rs := NewReplicaStore()
	rs.Apply("n1", rput(1, "gone", "will be deleted by absence"))
	rs.Apply("n1", rput(2, "kept", "stays, snapshot includes it"))
	rs.Apply("n1", rput(9, "newer", "streamed past the snapshot clock"))
	rs.Apply("n2", rput(3, "other", "different owner's shard"))

	owned := map[string]bool{"gone": true, "kept": true, "newer": true}
	rs.FullSync("n1", 5, []wal.Record{rput(2, "kept", "stays, snapshot includes it")},
		func(id string) bool { return owned[id] })

	if _, ok := rs.Get("gone"); ok {
		t.Fatal("absent-from-snapshot entry survived full sync")
	}
	if _, ok := rs.Get("kept"); !ok {
		t.Fatal("snapshot entry lost")
	}
	if _, ok := rs.Get("newer"); !ok {
		t.Fatal("entry newer than snapshot clock deleted")
	}
	if _, ok := rs.Get("other"); !ok {
		t.Fatal("another owner's entry deleted")
	}
	if rs.Applied("n1") != 9 {
		t.Fatalf("applied = %d, want 9 (stream had advanced past clock)", rs.Applied("n1"))
	}
	list := rs.List()
	if len(list) != 3 || list[0].ID != "kept" || list[1].ID != "newer" || list[2].ID != "other" {
		t.Fatalf("List: %+v", list)
	}
}
