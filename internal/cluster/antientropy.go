package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Anti-entropy. Replication is at-least-once and version-guarded, which
// covers crashes and redelivery — but not silent divergence: a replica
// byte-flipped on disk, or an update window missed in a way no retry
// covers, stays wrong until the next full sync that may never come. The
// anti-entropy loop closes that gap: each follower periodically asks each
// owner for a digest of the records it should be following (per-bucket
// live count + commutative checksum over id/version/text), compares it
// with the same digest over its replica, and re-syncs only the diverged
// buckets — 1/16th of the peer relationship per divergence, not a full
// snapshot. Repair overwrites same-version entries (unlike the streaming
// version guard), because equal-version corruption is exactly the failure
// mode digests exist to catch.
//
// Rounds are skipped mid-transition and against peers at a different
// epoch — handoff moves records between nodes wholesale, and a digest
// diff across rings would "repair" perfectly healthy state.

// digestResponse is the digest part of a /cluster/state?digest=1 answer.
type digestResponse struct {
	Ring   RingState                    `json:"ring"`
	Digest *[DigestBuckets]BucketDigest `json:"digest"`
}

// antiEntropyLoop runs digest rounds until the node closes.
func (n *Node) antiEntropyLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.AntiEntropy)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.antiEntropyRound()
		}
	}
}

// antiEntropyRound digest-diffs this node's replica view against every
// reachable owner.
func (n *Node) antiEntropyRound() {
	n.mu.RLock()
	transitioning := n.next != nil
	n.mu.RUnlock()
	if transitioning {
		return
	}
	n.counter("cluster_antientropy_rounds_total").Inc()
	for _, p := range n.snapshotPeers() {
		if n.Up(p.id) {
			n.antiEntropyPeer(p)
		}
	}
}

// antiEntropyPeer compares one owner's digest with the local replica view
// of that owner's shards and repairs diverged buckets.
func (n *Node) antiEntropyPeer(p *peerState) {
	epoch := n.Epoch()
	remote, peerEpoch, err := n.fetchDigest(p)
	if err != nil || peerEpoch != epoch {
		return
	}
	owner := p.id
	local := n.replica.Digest(func(id string) bool { return n.Owner(id) == owner })
	for b := 0; b < DigestBuckets; b++ {
		if local[b] == remote[b] {
			continue
		}
		if changed, err := n.repairBucket(p, b); err == nil && changed > 0 {
			n.counter("cluster_antientropy_repairs_total", "peer", owner).Add(int64(changed))
		}
	}
}

// fetchDigest asks owner p for the digest of the records this node
// should be following.
func (n *Node) fetchDigest(p *peerState) (*[DigestBuckets]BucketDigest, uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	url := p.url + PathState + "?digest=1&node=" + n.cfg.Self
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("cluster: digest from %s: status %d", p.id, resp.StatusCode)
	}
	var dr digestResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&dr); err != nil {
		return nil, 0, err
	}
	if dr.Digest == nil {
		return nil, 0, fmt.Errorf("cluster: %s answered without a digest", p.id)
	}
	return dr.Digest, dr.Ring.Epoch, nil
}

// repairBucket replaces the local replica view of one diverged bucket
// with the owner's snapshot of it.
func (n *Node) repairBucket(p *peerState, bucket int) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	url := p.url + PathSync + "?node=" + n.cfg.Self + "&bucket=" + strconv.Itoa(bucket)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: bucket sync from %s: status %d", p.id, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	clock, recs, err := DecodeSyncPayload(body)
	if err != nil {
		return 0, err
	}
	owner := p.id
	changed := n.replica.RepairBucket(owner, clock, recs, func(id string) bool {
		return n.Owner(id) == owner && Bucket(id) == bucket
	})
	return changed, nil
}
