package cluster

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

// TestRingDeterministic: every node must compute the identical routing
// from the identical peer list, regardless of list order — that is the
// whole coordination-free premise.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		if r1.Owner(key) != r2.Owner(key) || r1.Follower(key) != r2.Follower(key) {
			t.Fatalf("key %q: ring order-dependent (%s/%s vs %s/%s)", key,
				r1.Owner(key), r1.Follower(key), r2.Owner(key), r2.Follower(key))
		}
	}
}

// TestRingOwnerFollowerDistinct: the follower is always a different node
// from the owner on a multi-node ring, and empty on a 1-node ring.
func TestRingOwnerFollowerDistinct(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		o, f := r.Owner(key), r.Follower(key)
		if o == f || o == "" || f == "" {
			t.Fatalf("key %q: owner %q follower %q", key, o, f)
		}
	}
	solo, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Owner("x") != "only" || solo.Follower("x") != "" {
		t.Fatalf("1-node ring: owner %q follower %q", solo.Owner("x"), solo.Follower("x"))
	}
}

// TestRingBalance: with default vnodes, no node of three owns more than
// half of a large key population — a coarse bound that catches gross
// hashing mistakes without flaking on distribution noise.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	for node, c := range counts {
		if c == 0 || c > keys/2 {
			t.Fatalf("node %s owns %d of %d keys: %v", node, c, keys, counts)
		}
	}
}

// TestRingRebalanceProperty: the consistent-hashing contract that makes
// membership changes cheap. Adding one node to an N-node ring must
// (a) move only keys whose new owner IS the added node — nothing
// shuffles between surviving nodes — and (b) move roughly 1/(N+1) of
// the key population, within a generous 2x band that tolerates vnode
// placement noise but catches mod-N style rehashing (which moves ~all
// keys). Removing the node again restores the exact prior assignment,
// because the ring is a pure function of the member list.
func TestRingRebalanceProperty(t *testing.T) {
	const keys = 20000
	for _, n := range []int{3, 5} {
		base := make([]string, n)
		for i := range base {
			base[i] = fmt.Sprintf("n%d", i+1)
		}
		before, err := NewRing(base, 0)
		if err != nil {
			t.Fatal(err)
		}
		added := "n-joiner"
		after, err := NewRing(append(append([]string{}, base...), added), 0)
		if err != nil {
			t.Fatal(err)
		}

		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("user-%d", i)
			o1, o2 := before.Owner(key), after.Owner(key)
			if o1 == o2 {
				continue
			}
			if o2 != added {
				t.Fatalf("N=%d key %q moved %s→%s, not to the added node", n, key, o1, o2)
			}
			moved++
		}
		want := float64(keys) / float64(n+1)
		if f := float64(moved); f < want/2 || f > want*2 {
			t.Fatalf("N=%d: %d of %d keys moved, want ≈%.0f (1/(N+1))", n, moved, keys, want)
		}

		restored, err := NewRing(base, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("user-%d", i)
			if before.Owner(key) != restored.Owner(key) {
				t.Fatalf("N=%d key %q: removal did not restore prior owner (%s vs %s)",
					n, key, before.Owner(key), restored.Owner(key))
			}
		}
	}
}

// TestRingFollowersReplicas: with R=3 every key gets two followers,
// all three placements distinct, Follower() is the first of them, and
// HasFollower agrees with the list.
func TestRingFollowersReplicas(t *testing.T) {
	st := RingState{
		Epoch:    1,
		Replicas: 3,
		Members: map[string]string{
			"n1": "http://h1", "n2": "http://h2",
			"n3": "http://h3", "n4": "http://h4",
		},
	}
	r, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		owner := r.Owner(key)
		fs := r.Followers(key)
		if len(fs) != 2 {
			t.Fatalf("key %q: followers %v, want 2", key, fs)
		}
		seen := map[string]bool{owner: true}
		for _, f := range fs {
			if seen[f] {
				t.Fatalf("key %q: duplicate placement in owner=%s followers=%v", key, owner, fs)
			}
			seen[f] = true
			if !r.HasFollower(key, f) {
				t.Fatalf("key %q: HasFollower(%s) = false but listed", key, f)
			}
		}
		if r.Follower(key) != fs[0] {
			t.Fatalf("key %q: Follower %q != Followers[0] %q", key, r.Follower(key), fs[0])
		}
		if r.HasFollower(key, owner) {
			t.Fatalf("key %q: owner %s reported as follower", key, owner)
		}
	}
}

// TestRingNodesWalk: Nodes never repeats a node and caps at cluster size.
func TestRingNodesWalk(t *testing.T) {
	r, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := r.Nodes("some-key", 5)
	if len(ns) != 2 || ns[0] == ns[1] {
		t.Fatalf("Nodes walk: %v", ns)
	}
}
