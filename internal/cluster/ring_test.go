package cluster

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

// TestRingDeterministic: every node must compute the identical routing
// from the identical peer list, regardless of list order — that is the
// whole coordination-free premise.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		if r1.Owner(key) != r2.Owner(key) || r1.Follower(key) != r2.Follower(key) {
			t.Fatalf("key %q: ring order-dependent (%s/%s vs %s/%s)", key,
				r1.Owner(key), r1.Follower(key), r2.Owner(key), r2.Follower(key))
		}
	}
}

// TestRingOwnerFollowerDistinct: the follower is always a different node
// from the owner on a multi-node ring, and empty on a 1-node ring.
func TestRingOwnerFollowerDistinct(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		o, f := r.Owner(key), r.Follower(key)
		if o == f || o == "" || f == "" {
			t.Fatalf("key %q: owner %q follower %q", key, o, f)
		}
	}
	solo, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Owner("x") != "only" || solo.Follower("x") != "" {
		t.Fatalf("1-node ring: owner %q follower %q", solo.Owner("x"), solo.Follower("x"))
	}
}

// TestRingBalance: with default vnodes, no node of three owns more than
// half of a large key population — a coarse bound that catches gross
// hashing mistakes without flaking on distribution noise.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	for node, c := range counts {
		if c == 0 || c > keys/2 {
			t.Fatalf("node %s owns %d of %d keys: %v", node, c, keys, counts)
		}
	}
}

// TestRingNodesWalk: Nodes never repeats a node and caps at cluster size.
func TestRingNodesWalk(t *testing.T) {
	r, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := r.Nodes("some-key", 5)
	if len(ns) != 2 || ns[0] == ns[1] {
		t.Fatalf("Nodes walk: %v", ns)
	}
}
