// Package cluster turns cqpd into a multi-node service: a consistent-hash
// ring assigns every profile ID an owner node and a follower node
// (replication factor R=2) out of a static peer list, owners stream their
// acked write-ahead-log frames to the follower of each mutated profile,
// and followers hold a version-guarded replica that serves reads when the
// owner is unreachable.
//
// The design leans entirely on invariants the single-node daemon already
// guarantees: the WAL serializes every mutation as a CRC-framed record
// under a strictly monotone per-node version clock, so shipping those
// frames in append order and applying them under the same version guard
// reproduces the owner's profile state record for record. Nothing in this
// package interprets profiles; it moves acked frames.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is how many points each node contributes to the
// ring. 64 keeps the ownership split within a few percent of even for
// small clusters while the ring stays tiny (3 nodes → 192 points).
const DefaultVirtualNodes = 64

// ReplicationFactor is the number of nodes that hold each profile: the
// owner plus one follower. Fixed at 2 — the static-peer-list design has
// no use for deeper chains until membership is dynamic.
const ReplicationFactor = 2

// Ring is an immutable consistent-hash ring over a static node set. Keys
// map to the first ring point at or clockwise after their hash; the next
// distinct node clockwise is the follower. Immutability is the point:
// every node computes the identical ring from the identical -peers list,
// so routing needs no coordination.
type Ring struct {
	nodes  []string // sorted distinct node IDs
	hashes []uint64 // sorted ring points
	owner  []string // owner[i] is the node at hashes[i]
}

// NewRing builds the ring with vnodes virtual nodes per node (0 selects
// DefaultVirtualNodes). Node IDs must be non-empty and distinct.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
	}
	r := &Ring{
		nodes:  sorted,
		hashes: make([]uint64, 0, len(sorted)*vnodes),
		owner:  make([]string, 0, len(sorted)*vnodes),
	}
	type point struct {
		h    uint64
		node string
	}
	pts := make([]point, 0, len(sorted)*vnodes)
	for _, n := range sorted {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hash64(fmt.Sprintf("%s#%d", n, v)), n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node // deterministic on (vanishingly rare) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.node)
	}
	return r, nil
}

// Nodes returns the distinct nodes responsible for key, owner first, up
// to n entries (fewer when the cluster is smaller than n).
func (r *Ring) Nodes(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; len(out) < n && i < len(r.hashes); i++ {
		node := r.owner[(start+i)%len(r.hashes)]
		seen := false
		for _, o := range out {
			if o == node {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, node)
		}
	}
	return out
}

// Owner returns the node that owns key.
func (r *Ring) Owner(key string) string { return r.Nodes(key, 1)[0] }

// Follower returns the replica holder for key: the next distinct node
// clockwise from the owner. Empty for a single-node ring.
func (r *Ring) Follower(key string) string {
	ns := r.Nodes(key, ReplicationFactor)
	if len(ns) < ReplicationFactor {
		return ""
	}
	return ns[1]
}

// Members returns the ring's node IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.nodes...) }

// hash64 is FNV-1a 64 with a splitmix64 finalizer — fast, allocation-free,
// and stable across processes, which is all consistent routing needs
// (peers are trusted; this is not an adversarial hash). The finalizer
// matters: raw FNV-1a on short, similar strings ("n1#0", "n1#1", …)
// leaves the high bits correlated and the ring lopsided.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
