// Package cluster turns cqpd into a multi-node service: a consistent-hash
// ring assigns every profile ID an owner node and R−1 follower nodes
// (replication factor R, default 2), owners stream their acked
// write-ahead-log frames to the followers of each mutated profile, and
// followers hold a version-guarded replica that serves reads when the
// owner is unreachable.
//
// Membership is dynamic: every ring change (join or leave) mints a new
// ring-version epoch, carried on all replication and proxy traffic, so a
// node applying a stale-epoch frame or proxying on a stale ring is
// rejected with wrong_epoch and refetches /cluster/state instead of
// silently misrouting. Ring changes move owned shards through a
// bounded-rate handoff (see handoff.go), and a background anti-entropy
// loop (see antientropy.go) converges replicas that silently diverged.
//
// The design leans entirely on invariants the single-node daemon already
// guarantees: the WAL serializes every mutation as a CRC-framed record
// under a strictly monotone per-node version clock, so shipping those
// frames in append order and applying them under the same version guard
// reproduces the owner's profile state record for record. Nothing in this
// package interprets profiles; it moves acked frames.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is how many points each node contributes to the
// ring. 64 keeps the ownership split within a few percent of even for
// small clusters while the ring stays tiny (3 nodes → 192 points).
const DefaultVirtualNodes = 64

// DefaultReplicas is the default replication factor R: the owner plus one
// follower per profile. R=3 survives two simultaneous owner deaths at the
// cost of one more replication stream per mutation.
const DefaultReplicas = 2

// RingState is the wire form of one ring version: the epoch, the
// replication factor, and the member set with its URLs. Every node of a
// cluster holds an identical RingState for the active epoch; /cluster/ring
// broadcasts carry it, and /cluster/state serves it for refetching.
type RingState struct {
	Epoch    uint64            `json:"epoch"`
	Replicas int               `json:"replicas"`
	Members  map[string]string `json:"members"` // node ID → base URL
	VNodes   int               `json:"vnodes,omitempty"`
}

// Build constructs the consistent-hash ring this state describes.
func (st RingState) Build() (*Ring, error) {
	ids := make([]string, 0, len(st.Members))
	for id := range st.Members {
		ids = append(ids, id)
	}
	r, err := NewRing(ids, st.VNodes)
	if err != nil {
		return nil, err
	}
	r.epoch = st.Epoch
	if st.Replicas > 0 {
		r.replicas = st.Replicas
	}
	return r, nil
}

// Clone deep-copies the state (the member map is shared otherwise).
func (st RingState) Clone() RingState {
	m := make(map[string]string, len(st.Members))
	for id, url := range st.Members {
		m[id] = url
	}
	st.Members = m
	return st
}

// Ring is an immutable consistent-hash ring over one epoch's node set.
// Keys map to the first ring point at or clockwise after their hash; the
// next R−1 distinct nodes clockwise are the followers. Immutability per
// epoch is the point: every node at the same epoch computes the identical
// routing, so steady-state routing needs no coordination — only ring
// *changes* coordinate, through the epoch-stamped handoff protocol.
type Ring struct {
	nodes    []string // sorted distinct node IDs
	hashes   []uint64 // sorted ring points
	owner    []string // owner[i] is the node at hashes[i]
	epoch    uint64
	replicas int
}

// NewRing builds an epoch-0 ring with vnodes virtual nodes per node (0
// selects DefaultVirtualNodes) and the default replication factor. Node
// IDs must be non-empty and distinct.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
	}
	r := &Ring{
		nodes:    sorted,
		hashes:   make([]uint64, 0, len(sorted)*vnodes),
		owner:    make([]string, 0, len(sorted)*vnodes),
		replicas: DefaultReplicas,
	}
	type point struct {
		h    uint64
		node string
	}
	pts := make([]point, 0, len(sorted)*vnodes)
	for _, n := range sorted {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hash64(fmt.Sprintf("%s#%d", n, v)), n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node // deterministic on (vanishingly rare) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.node)
	}
	return r, nil
}

// Epoch returns the ring version this ring was built for.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Replicas returns the replication factor R (owner + R−1 followers).
func (r *Ring) Replicas() int { return r.replicas }

// Nodes returns the distinct nodes responsible for key, owner first, up
// to n entries (fewer when the cluster is smaller than n).
func (r *Ring) Nodes(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; len(out) < n && i < len(r.hashes); i++ {
		node := r.owner[(start+i)%len(r.hashes)]
		seen := false
		for _, o := range out {
			if o == node {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, node)
		}
	}
	return out
}

// Owner returns the node that owns key.
func (r *Ring) Owner(key string) string { return r.Nodes(key, 1)[0] }

// Followers returns the replica holders for key: the first R−1 distinct
// successors clockwise from the owner, in failover order. Fewer (possibly
// none) on a cluster smaller than R.
func (r *Ring) Followers(key string) []string {
	ns := r.Nodes(key, r.replicas)
	return ns[1:]
}

// Follower returns the first replica holder for key — the primary
// failover target. Empty for a single-node ring.
func (r *Ring) Follower(key string) string {
	fs := r.Followers(key)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// HasFollower reports whether node is one of key's followers.
func (r *Ring) HasFollower(key, node string) bool {
	for _, f := range r.Followers(key) {
		if f == node {
			return true
		}
	}
	return false
}

// Members returns the ring's node IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.nodes...) }

// Has reports whether node is a ring member.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// DigestBuckets is how many buckets anti-entropy digests split a node's
// shard space into: divergence re-syncs only the diverged bucket, 1/16th
// of the space, instead of the whole peer relationship.
const DigestBuckets = 16

// Bucket maps a profile ID to its anti-entropy digest bucket.
func Bucket(id string) int { return int(hash64(id) % DigestBuckets) }

// DigestChecksum folds one record's identity into a bucket checksum:
// commutative (sum) over splitmix-scrambled (id, version, text) so any
// missed update, version skew, or silent byte corruption shifts the sum.
func DigestChecksum(id string, version uint64, text string) uint64 {
	return mix64(hash64(id) ^ mix64(version) ^ hash64(text))
}

// hash64 is FNV-1a 64 with a splitmix64 finalizer — fast, allocation-free,
// and stable across processes, which is all consistent routing needs
// (peers are trusted; this is not an adversarial hash). The finalizer
// matters: raw FNV-1a on short, similar strings ("n1#0", "n1#1", …)
// leaves the high bits correlated and the ring lopsided.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
