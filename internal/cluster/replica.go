package cluster

import (
	"sort"
	"sync"

	"cqp/internal/wal"
)

// ReplicaStore holds the version-guarded replica of every profile this
// node follows. Entries are raw WAL records — text, version, timestamp —
// exactly as the owner acked them; deletes are kept as tombstones so a
// reordered older put can never resurrect a deleted profile (the same
// rule WAL replay uses). All methods are safe for concurrent use.
type ReplicaStore struct {
	mu sync.RWMutex
	m  map[string]wal.Record
	// applied[owner] is the highest version applied from that owner's
	// replication stream — the cumulative ack the follower returns, and
	// the number lag is measured against. Per-peer streams deliver in
	// append order, so highest == highest contiguous.
	applied map[string]uint64
}

// NewReplicaStore builds an empty replica store.
func NewReplicaStore() *ReplicaStore {
	return &ReplicaStore{m: make(map[string]wal.Record), applied: make(map[string]uint64)}
}

// Apply merges one streamed record from owner under the version guard: it
// takes effect only over a strictly older entry for the same ID.
// Returns whether the record changed state (false = stale duplicate).
func (rs *ReplicaStore) Apply(owner string, rec wal.Record) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rec.Version > rs.applied[owner] {
		rs.applied[owner] = rec.Version
	}
	if cur, ok := rs.m[rec.ID]; ok && cur.Version >= rec.Version {
		return false
	}
	rs.m[rec.ID] = rec
	return true
}

// FullSync replaces this store's view of owner's shards with a snapshot:
// recs is the owner's complete live state (for the keys this node
// follows) captured at clock. Entries the snapshot does not contain, for
// IDs the owner owns (per ownedBy), at versions the snapshot supersedes
// (≤ clock), are deleted — that absence is how a full sync carries
// deletions. Entries newer than clock (streamed concurrently with the
// snapshot capture) are kept; the version guard makes overlap idempotent.
func (rs *ReplicaStore) FullSync(owner string, clock uint64, recs []wal.Record, ownedBy func(id string) bool) {
	incoming := make(map[string]bool, len(recs))
	for _, r := range recs {
		incoming[r.ID] = true
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for id, cur := range rs.m {
		if !incoming[id] && cur.Version <= clock && ownedBy(id) {
			delete(rs.m, id)
		}
	}
	for _, rec := range recs {
		if cur, ok := rs.m[rec.ID]; ok && cur.Version >= rec.Version {
			continue
		}
		rs.m[rec.ID] = rec
	}
	if clock > rs.applied[owner] {
		rs.applied[owner] = clock
	}
}

// Get returns the live replica record for id (tombstones read as absent).
func (rs *ReplicaStore) Get(id string) (wal.Record, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	rec, ok := rs.m[id]
	if !ok || rec.Op != wal.OpPut {
		return wal.Record{}, false
	}
	return rec, true
}

// Applied returns the highest version applied from owner's stream.
func (rs *ReplicaStore) Applied(owner string) uint64 {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.applied[owner]
}

// Len counts live replica profiles (tombstones excluded).
func (rs *ReplicaStore) Len() int {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	n := 0
	for _, rec := range rs.m {
		if rec.Op == wal.OpPut {
			n++
		}
	}
	return n
}

// BucketDigest summarizes one anti-entropy bucket: how many live records
// it holds and the commutative checksum over their (id, version, text).
type BucketDigest struct {
	Count int    `json:"count"`
	Sum   uint64 `json:"sum"`
}

// DigestRecords buckets a record set into the anti-entropy digest. Only
// live records count — the owner's store snapshot has no tombstones, so
// replica tombstones must not perturb the comparison.
func DigestRecords(recs []wal.Record) [DigestBuckets]BucketDigest {
	var d [DigestBuckets]BucketDigest
	for _, rec := range recs {
		if rec.Op != wal.OpPut {
			continue
		}
		b := Bucket(rec.ID)
		d[b].Count++
		d[b].Sum += DigestChecksum(rec.ID, rec.Version, rec.Text)
	}
	return d
}

// Digest computes this store's anti-entropy digest over the live entries
// selected by pred (typically: owned by one peer). Garbage entries this
// node no longer follows still count — the resulting mismatch is what
// gets them repaired away.
func (rs *ReplicaStore) Digest(pred func(id string) bool) [DigestBuckets]BucketDigest {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	var d [DigestBuckets]BucketDigest
	for id, rec := range rs.m {
		if rec.Op != wal.OpPut || !pred(id) {
			continue
		}
		b := Bucket(id)
		d[b].Count++
		d[b].Sum += DigestChecksum(id, rec.Version, rec.Text)
	}
	return d
}

// RepairBucket replaces this store's view of one diverged digest bucket
// with the owner's snapshot of it (recs, captured at clock; pred selects
// the bucket's IDs owned by owner). Unlike FullSync's strict version
// guard, entries at versions the snapshot supersedes (≤ clock) are
// overwritten even when versions are equal — that is the only way a
// silently corrupted same-version replica heals. Entries newer than clock
// (streamed concurrently with the snapshot) are kept.
func (rs *ReplicaStore) RepairBucket(owner string, clock uint64, recs []wal.Record, pred func(id string) bool) (changed int) {
	incoming := make(map[string]wal.Record, len(recs))
	for _, r := range recs {
		incoming[r.ID] = r
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for id, cur := range rs.m {
		if !pred(id) {
			continue
		}
		if _, ok := incoming[id]; !ok && cur.Version <= clock {
			delete(rs.m, id)
			changed++
		}
	}
	for id, rec := range incoming {
		cur, ok := rs.m[id]
		if ok && cur.Version > clock && cur.Version >= rec.Version {
			continue
		}
		if !ok || cur != rec {
			changed++
		}
		rs.m[id] = rec
	}
	if clock > rs.applied[owner] {
		rs.applied[owner] = clock
	}
	return changed
}

// OwnedBy lists the live replica records selected by pred — the records
// this node would promote into its store if pred's owner died.
func (rs *ReplicaStore) OwnedBy(pred func(id string) bool) []wal.Record {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := make([]wal.Record, 0)
	for id, rec := range rs.m {
		if rec.Op == wal.OpPut && pred(id) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TamperForTest mutates one replica entry in place — test hook for
// simulating silent corruption that anti-entropy must detect and repair.
func (rs *ReplicaStore) TamperForTest(id string, fn func(*wal.Record)) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rec, ok := rs.m[id]
	if !ok {
		return false
	}
	fn(&rec)
	rs.m[id] = rec
	return true
}

// DropForTest deletes one replica entry outright — test hook for
// simulating a missed update. Reports whether the entry existed.
func (rs *ReplicaStore) DropForTest(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	_, ok := rs.m[id]
	delete(rs.m, id)
	return ok
}

// List returns every live replica record, sorted by ID — the
// deterministic order the drill diffs against the owner's state.
func (rs *ReplicaStore) List() []wal.Record {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := make([]wal.Record, 0, len(rs.m))
	for _, rec := range rs.m {
		if rec.Op == wal.OpPut {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
