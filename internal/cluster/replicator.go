package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cqp/internal/wal"
)

// Replication protocol. The owner appends to its WAL exactly as in
// single-node mode; every record that becomes acked history is also
// enqueued to the mutated profile's follower. A per-peer sender goroutine
// ships queued records in batches of CRC-framed WAL records over the
// shared keep-alive HTTP client (POST /cluster/replicate), and the
// follower answers with the highest version it has applied from this
// owner's stream — the cumulative ack. Batches are retried in place with
// backoff, so per-peer delivery is ordered and at-least-once; the
// follower's version guard makes redelivery idempotent.
//
// When a follower is unreachable long enough for its queue to overflow,
// the sender stops pretending the stream is contiguous: it drops the
// queue, marks the peer sync-needed, and on reconnect pushes a full
// snapshot (clock + live owned records, the same payload catch-up pulls)
// before resuming frame shipping. Absence from a snapshot carries
// deletions, so nothing relies on an unbroken tombstone stream.

const (
	// sendBatchMax bounds one replicate POST.
	sendBatchMax = 256
	// sendBackoffMin/Max bound the retry backoff for an unreachable peer.
	sendBackoffMin = 100 * time.Millisecond
	sendBackoffMax = 2 * time.Second
)

// replicateResponse is the follower's ack body.
type replicateResponse struct {
	// Applied is the highest version applied from this owner's stream.
	Applied uint64 `json:"applied"`
	// Records is how many records this request carried that changed state.
	Records int `json:"records"`
}

// Replicate enqueues one acked record for shipment to its follower. Called
// from the WAL's OnAppend hook (owner's mutation path, lock held), so it
// must not block: when the peer's queue is full the record is dropped and
// the peer is marked for a full sync instead.
func (n *Node) Replicate(rec wal.Record) {
	if !n.cfg.Replicate {
		return
	}
	follower := n.ring.Follower(rec.ID)
	if follower == "" || follower == n.cfg.Self {
		return
	}
	p, ok := n.peers[follower]
	if !ok {
		return
	}
	select {
	case p.ch <- rec:
		p.pending.add(1)
	default:
		n.markNeedSync(p)
		n.counter("cluster_replication_dropped_total", "peer", p.id).Inc()
	}
}

// markNeedSync queues a full-sync token for the peer (idempotent).
func (n *Node) markNeedSync(p *peerState) {
	select {
	case p.needSync <- struct{}{}:
	default:
	}
}

// sendLoop is one peer's shipping goroutine.
func (n *Node) sendLoop(p *peerState) {
	defer n.wg.Done()
	backoff := sendBackoffMin
	var batch []wal.Record
	for {
		// A pending full-sync token outranks queued frames: the stream is
		// known broken, so replace state wholesale first.
		select {
		case <-p.needSync:
			n.drain(p)
			batch = nil
			if err := n.pushFullSync(p); err != nil {
				n.markNeedSync(p)
				n.counter("cluster_replication_errors_total", "peer", p.id).Inc()
				if !n.sleep(&backoff) {
					return
				}
				continue
			}
			n.counter("cluster_full_syncs_total", "peer", p.id).Inc()
			backoff = sendBackoffMin
			continue
		default:
		}
		if len(batch) == 0 {
			select {
			case <-n.stop:
				return
			case <-p.needSync:
				n.markNeedSync(p) // re-queue; handled at loop top
				continue
			case rec := <-p.ch:
				batch = append(batch, rec)
			}
			for len(batch) < sendBatchMax {
				select {
				case rec := <-p.ch:
					batch = append(batch, rec)
				default:
					goto full
				}
			}
		full:
		}
		if err := n.postReplicate(p, batch); err != nil {
			n.counter("cluster_replication_errors_total", "peer", p.id).Inc()
			if !n.sleep(&backoff) {
				return
			}
			continue
		}
		p.pending.add(int64(-len(batch)))
		n.counter("cluster_replicated_records_total", "peer", p.id).Add(int64(len(batch)))
		batch = nil
		backoff = sendBackoffMin
	}
}

// drain empties a peer's queue (its contents are superseded by the full
// sync about to be pushed).
func (n *Node) drain(p *peerState) {
	for {
		select {
		case <-p.ch:
			p.pending.add(-1)
		default:
			return
		}
	}
}

// sleep backs off between retries; false means the node is closing.
func (n *Node) sleep(backoff *time.Duration) bool {
	select {
	case <-n.stop:
		return false
	case <-time.After(*backoff):
	}
	*backoff *= 2
	if *backoff > sendBackoffMax {
		*backoff = sendBackoffMax
	}
	return true
}

// postReplicate ships one batch of frames and records the follower's ack.
func (n *Node) postReplicate(p *peerState, batch []wal.Record) error {
	body := wal.EncodeRecords(batch)
	resp, err := n.doReplicatePost(p, PathReplicate+"?from="+n.cfg.Self, body)
	if err != nil {
		return err
	}
	p.pending.setAcked(resp.Applied)
	return nil
}

// pushFullSync replaces the peer's replica view of this node's shards
// with a fresh snapshot from SyncSource.
func (n *Node) pushFullSync(p *peerState) error {
	if n.cfg.SyncSource == nil {
		return fmt.Errorf("cluster: no sync source configured")
	}
	clock, recs := n.cfg.SyncSource(p.id)
	body := EncodeSyncPayload(clock, recs)
	resp, err := n.doReplicatePost(p, PathReplicate+"?from="+n.cfg.Self+"&sync=1", body)
	if err != nil {
		return err
	}
	p.pending.setAcked(resp.Applied)
	return nil
}

// doReplicatePost performs one replication POST with a bounded deadline.
func (n *Node) doReplicatePost(p *peerState, path string, body []byte) (*replicateResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: replicate to %s: status %d", p.id, resp.StatusCode)
	}
	var rr replicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("cluster: replicate ack from %s: %w", p.id, err)
	}
	return &rr, nil
}

// ApplyReplicate is the follower half of the replicate endpoint: sync=1
// bodies replace the owner's shard view, plain bodies stream frames into
// the version-guarded replica. Returns the ack the owner expects.
func (n *Node) ApplyReplicate(from string, sync bool, body []byte) (applied uint64, changed int, err error) {
	if sync {
		clock, recs, err := DecodeSyncPayload(body)
		if err != nil {
			return 0, 0, err
		}
		owner := from
		n.replica.FullSync(owner, clock, recs, func(id string) bool { return n.ring.Owner(id) == owner })
		return n.replica.Applied(from), len(recs), nil
	}
	recs, err := wal.DecodeFrames(body)
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range recs {
		if n.replica.Apply(from, rec) {
			changed++
		}
	}
	return n.replica.Applied(from), changed, nil
}
