package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cqp/internal/wal"
)

// Replication protocol. The owner appends to its WAL exactly as in
// single-node mode; every record that becomes acked history is also
// enqueued to each of the mutated profile's R−1 followers. A per-peer
// sender goroutine ships queued records in batches of CRC-framed WAL
// records over the shared keep-alive HTTP client (POST /cluster/replicate,
// stamped with the sender's ring epoch), and the follower answers with the
// highest version it has applied from this owner's stream — the cumulative
// ack. Batches are retried in place with backoff, so per-peer delivery is
// ordered and at-least-once; the follower's version guard makes redelivery
// idempotent.
//
// When a follower is unreachable long enough for its queue to overflow,
// the sender stops pretending the stream is contiguous: it drops the
// queue, marks the peer sync-needed, and on reconnect pushes a full
// snapshot (clock + live owned records, the same payload catch-up pulls)
// before resuming frame shipping. Absence from a snapshot carries
// deletions, so nothing relies on an unbroken tombstone stream.
//
// Epoch mismatches get the same treatment: a follower on a different ring
// version rejects the batch with wrong_epoch, the sender adopts the newer
// ring (pulling the peer's /cluster/state when the peer is ahead) and
// degrades the peer to full-sync mode — the queued frames were routed
// under the old ring and may no longer belong on this peer at all.

const (
	// sendBatchMax bounds one replicate POST.
	sendBatchMax = 256
	// sendBackoffMin/Max bound the retry backoff for an unreachable peer.
	sendBackoffMin = 100 * time.Millisecond
	sendBackoffMax = 2 * time.Second
)

// HeaderEpoch carries the sender's ring epoch on proxied requests and the
// receiver's epoch on wrong_epoch rejections.
const HeaderEpoch = "X-Cqpd-Epoch"

// errWrongEpoch reports a peer rejecting traffic stamped with a ring epoch
// different from its own.
type errWrongEpoch struct {
	peer      string
	peerEpoch uint64
	sentEpoch uint64
}

func (e *errWrongEpoch) Error() string {
	return fmt.Sprintf("cluster: %s at epoch %d rejected epoch %d", e.peer, e.peerEpoch, e.sentEpoch)
}

// replicateResponse is the follower's ack body.
type replicateResponse struct {
	// Applied is the highest version applied from this owner's stream.
	Applied uint64 `json:"applied"`
	// Records is how many records this request carried that changed state.
	Records int `json:"records"`
}

// Replicate enqueues one acked record for shipment to each of its
// followers. Called from the WAL's OnAppend hook (owner's mutation path,
// lock held), so it must not block: when a peer's queue is full the record
// is dropped and that peer is marked for a full sync instead.
//
// Only the profile's current owner replicates. The guard matters at
// handoff cutover: the old owner's eviction tombstones hit the same WAL
// hook, and without it they would ship to the new ring's followers and
// delete live replicas.
func (n *Node) Replicate(rec wal.Record) {
	if !n.cfg.Replicate {
		return
	}
	n.mu.RLock()
	ring := n.ring
	if ring.Owner(rec.ID) != n.cfg.Self {
		n.mu.RUnlock()
		return
	}
	var targets []*peerState
	for _, f := range ring.Followers(rec.ID) {
		if f == n.cfg.Self {
			continue
		}
		if p, ok := n.peers[f]; ok {
			targets = append(targets, p)
		}
	}
	n.mu.RUnlock()
	for _, p := range targets {
		select {
		case p.ch <- rec:
			p.pending.add(1)
		default:
			n.markNeedSync(p)
			n.counter("cluster_replication_dropped_total", "peer", p.id).Inc()
		}
	}
}

// markNeedSync queues a full-sync token for the peer (idempotent).
func (n *Node) markNeedSync(p *peerState) {
	select {
	case p.needSync <- struct{}{}:
	default:
	}
}

// MarkAllNeedSync degrades every peer to full-sync mode — called after a
// ring change commits, when the follower set of every shard may have
// moved: the next push per peer recomputes what that peer should hold
// under the new ring and replaces its view wholesale.
func (n *Node) MarkAllNeedSync() {
	if !n.cfg.Replicate {
		return
	}
	for _, p := range n.snapshotPeers() {
		n.markNeedSync(p)
	}
}

// sendLoop is one peer's shipping goroutine. It exits when the node closes
// or the peer leaves the ring.
func (n *Node) sendLoop(p *peerState) {
	defer n.wg.Done()
	backoff := sendBackoffMin
	var batch []wal.Record
	for {
		select {
		case <-p.done:
			return
		default:
		}
		// A pending full-sync token outranks queued frames: the stream is
		// known broken, so replace state wholesale first.
		select {
		case <-p.needSync:
			n.drain(p)
			batch = nil
			if err := n.pushFullSync(p); err != nil {
				n.handleSendError(p, err)
				n.markNeedSync(p)
				if !n.sleepPeer(p, &backoff) {
					return
				}
				continue
			}
			n.counter("cluster_full_syncs_total", "peer", p.id).Inc()
			backoff = sendBackoffMin
			continue
		default:
		}
		if len(batch) == 0 {
			select {
			case <-n.stop:
				return
			case <-p.done:
				return
			case <-p.needSync:
				n.markNeedSync(p) // re-queue; handled at loop top
				continue
			case rec := <-p.ch:
				batch = append(batch, rec)
			}
			for len(batch) < sendBatchMax {
				select {
				case rec := <-p.ch:
					batch = append(batch, rec)
				default:
					goto full
				}
			}
		full:
		}
		if err := n.postReplicate(p, batch); err != nil {
			n.handleSendError(p, err)
			if _, wrong := err.(*errWrongEpoch); wrong {
				// These frames were routed under a stale ring; the full sync
				// that follows recomputes this peer's view from scratch.
				p.pending.add(int64(-len(batch)))
				batch = nil
				n.markNeedSync(p)
			}
			if !n.sleepPeer(p, &backoff) {
				return
			}
			continue
		}
		p.pending.add(int64(-len(batch)))
		n.counter("cluster_replicated_records_total", "peer", p.id).Add(int64(len(batch)))
		batch = nil
		backoff = sendBackoffMin
	}
}

// handleSendError counts a failed push and, on an epoch mismatch with a
// peer that is ahead, adopts the peer's newer ring.
func (n *Node) handleSendError(p *peerState, err error) {
	if we, ok := err.(*errWrongEpoch); ok {
		n.counter("cluster_wrong_epoch_total", "path", "replicate").Inc()
		if we.peerEpoch > n.Epoch() {
			n.RefreshFromPeer(p.id)
		}
		return
	}
	n.counter("cluster_replication_errors_total", "peer", p.id).Inc()
}

// drain empties a peer's queue (its contents are superseded by the full
// sync about to be pushed).
func (n *Node) drain(p *peerState) {
	for {
		select {
		case <-p.ch:
			p.pending.add(-1)
		default:
			return
		}
	}
}

// sleepPeer backs off between retries; false means the node is closing or
// the peer has left the ring.
func (n *Node) sleepPeer(p *peerState, backoff *time.Duration) bool {
	select {
	case <-n.stop:
		return false
	case <-p.done:
		return false
	case <-time.After(*backoff):
	}
	*backoff *= 2
	if *backoff > sendBackoffMax {
		*backoff = sendBackoffMax
	}
	return true
}

// postReplicate ships one batch of frames and records the follower's ack.
func (n *Node) postReplicate(p *peerState, batch []wal.Record) error {
	body := wal.EncodeRecords(batch)
	resp, err := n.doReplicatePost(p, PathReplicate+"?from="+n.cfg.Self, body)
	if err != nil {
		return err
	}
	p.pending.setAcked(resp.Applied)
	return nil
}

// pushFullSync replaces the peer's replica view of this node's shards
// with a fresh snapshot from SyncSource.
func (n *Node) pushFullSync(p *peerState) error {
	if n.cfg.SyncSource == nil {
		return fmt.Errorf("cluster: no sync source configured")
	}
	clock, recs := n.cfg.SyncSource(p.id)
	body := EncodeSyncPayload(clock, recs)
	resp, err := n.doReplicatePost(p, PathReplicate+"?from="+n.cfg.Self+"&sync=1", body)
	if err != nil {
		return err
	}
	p.pending.setAcked(resp.Applied)
	return nil
}

// doReplicatePost performs one replication POST with a bounded deadline,
// stamped with the sender's current ring epoch.
func (n *Node) doReplicatePost(p *peerState, path string, body []byte) (*replicateResponse, error) {
	epoch := n.Epoch()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	url := p.url + path + "&epoch=" + strconv.FormatUint(epoch, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusConflict {
		if peerEpoch, err := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64); err == nil {
			return nil, &errWrongEpoch{peer: p.id, peerEpoch: peerEpoch, sentEpoch: epoch}
		}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: replicate to %s: status %d", p.id, resp.StatusCode)
	}
	var rr replicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("cluster: replicate ack from %s: %w", p.id, err)
	}
	return &rr, nil
}

// ApplyReplicate is the follower half of the replicate endpoint: sync=1
// bodies replace the owner's shard view, plain bodies stream frames into
// the version-guarded replica. Returns the ack the owner expects. The
// caller (the server handler) has already enforced the epoch guard.
func (n *Node) ApplyReplicate(from string, sync bool, body []byte) (applied uint64, changed int, err error) {
	if sync {
		clock, recs, err := DecodeSyncPayload(body)
		if err != nil {
			return 0, 0, err
		}
		owner := from
		n.replica.FullSync(owner, clock, recs, func(id string) bool { return n.Owner(id) == owner })
		return n.replica.Applied(from), len(recs), nil
	}
	recs, err := wal.DecodeFrames(body)
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range recs {
		if n.replica.Apply(from, rec) {
			changed++
		}
	}
	return n.replica.Applied(from), changed, nil
}
