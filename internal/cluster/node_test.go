package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqp/internal/wal"
)

// followerServer mounts a real follower Node's replicate/sync/ping
// handlers on an httptest server, with a kill switch for outage tests.
type followerServer struct {
	node *Node
	ts   *httptest.Server
	down atomic.Bool
}

func newFollowerServer(t *testing.T, self string, peers map[string]string) *followerServer {
	t.Helper()
	fs := &followerServer{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathPing, func(w http.ResponseWriter, r *http.Request) {
		if fs.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST "+PathReplicate, func(w http.ResponseWriter, r *http.Request) {
		if fs.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		applied, recs, err := fs.node.ApplyReplicate(
			r.URL.Query().Get("from"), r.URL.Query().Get("sync") == "1", body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, `{"applied":%d,"records":%d}`, applied, recs)
	})
	fs.ts = httptest.NewServer(mux)
	t.Cleanup(fs.ts.Close)

	// The follower node only needs a ring and a replica store; resolve its
	// own URL into the shared peer map.
	full := map[string]string{self: fs.ts.URL}
	for id, url := range peers {
		full[id] = url
	}
	node, err := New(Config{Self: self, Peers: full})
	if err != nil {
		t.Fatal(err)
	}
	fs.node = node
	return fs
}

// ownedKeys returns count keys that n owns (so their records replicate to
// the other node of a 2-node ring).
func ownedKeys(n *Node, count int) []string {
	var out []string
	for i := 0; len(out) < count; i++ {
		k := fmt.Sprintf("user-%d", i)
		if n.IsOwner(k) {
			out = append(out, k)
		}
	}
	return out
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationStream: records enqueued on the owner arrive at the
// follower's replica in order, and the cumulative ack drains the lag.
func TestReplicationStream(t *testing.T) {
	fs := newFollowerServer(t, "n2", map[string]string{"n1": "http://unused.invalid"})
	sender, err := New(Config{
		Self:      "n1",
		Peers:     map[string]string{"n1": "http://unused.invalid", "n2": fs.ts.URL},
		Replicate: true,
		// Long probe interval: this test exercises the sender, not probing.
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	sender.Start()
	defer sender.Close()

	keys := ownedKeys(sender, 10)
	for i, k := range keys {
		sender.Replicate(wal.Record{Op: wal.OpPut, ID: k, Text: "doi " + k, Version: uint64(i + 1)})
	}
	// A delete must propagate as a tombstone.
	sender.Replicate(wal.Record{Op: wal.OpDelete, ID: keys[0], Version: uint64(len(keys) + 1)})

	waitFor(t, 5*time.Second, "replica to apply the stream", func() bool {
		return fs.node.Replica().Len() == len(keys)-1 &&
			fs.node.Replica().Applied("n1") == uint64(len(keys)+1)
	})
	if _, ok := fs.node.Replica().Get(keys[0]); ok {
		t.Fatal("deleted profile still live on follower")
	}
	if rec, ok := fs.node.Replica().Get(keys[1]); !ok || rec.Text != "doi "+keys[1] {
		t.Fatalf("follower replica for %s: %+v ok=%v", keys[1], rec, ok)
	}
	waitFor(t, 5*time.Second, "sender lag to drain", func() bool {
		lag, acked := sender.peers["n2"].pending.get()
		return lag == 0 && acked == uint64(len(keys)+1)
	})
}

// TestOverflowFallsBackToFullSync: when the follower is down long enough
// for the queue to overflow, dropped records are NOT lost — reconnecting
// triggers a full sync from SyncSource that restores a complete view.
func TestOverflowFallsBackToFullSync(t *testing.T) {
	fs := newFollowerServer(t, "n2", map[string]string{"n1": "http://unused.invalid"})
	fs.down.Store(true)

	// truth is shared between the test goroutine (writes during the
	// overfill) and the sender goroutine (SyncSource reads during full-sync
	// attempts, which start as soon as the queue overflows).
	var (
		synced  atomic.Int64
		truthMu sync.Mutex
		truth   = map[string]wal.Record{}
	)
	sender, err := New(Config{
		Self:          "n1",
		Peers:         map[string]string{"n1": "http://unused.invalid", "n2": fs.ts.URL},
		Replicate:     true,
		ProbeInterval: time.Hour,
		SyncSource: func(peer string) (uint64, []wal.Record) {
			synced.Add(1)
			truthMu.Lock()
			defer truthMu.Unlock()
			var clock uint64
			recs := make([]wal.Record, 0, len(truth))
			for _, r := range truth {
				recs = append(recs, r)
				if r.Version > clock {
					clock = r.Version
				}
			}
			return clock, recs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sender.Start()
	defer sender.Close()

	// Overfill the 4096-record queue while the follower is down.
	keys := ownedKeys(sender, 50)
	var v uint64
	for round := 0; round < 120; round++ {
		for _, k := range keys {
			v++
			rec := wal.Record{Op: wal.OpPut, ID: k, Text: fmt.Sprintf("v%d", v), Version: v}
			truthMu.Lock()
			truth[k] = rec
			truthMu.Unlock()
			sender.Replicate(rec)
		}
	}
	// Overflow must have degraded the stream to full-sync mode: pushFullSync
	// consults SyncSource before the (failing) POST, so a sync attempt shows
	// up even while the follower is still down.
	waitFor(t, 5*time.Second, "overflow to trigger a full-sync attempt", func() bool {
		return synced.Load() > 0
	})

	fs.down.Store(false)
	truthMu.Lock()
	wantVersion := truth[keys[0]].Version
	truthMu.Unlock()
	waitFor(t, 10*time.Second, "full sync to restore the follower", func() bool {
		if fs.node.Replica().Len() != len(keys) {
			return false
		}
		rec, ok := fs.node.Replica().Get(keys[0])
		return ok && rec.Version == wantVersion
	})
}

// TestCatchUpPullsPeerState: a rejoining node pulls each peer's snapshot;
// an unreachable peer is reported, not waited on forever.
func TestCatchUpPullsPeerState(t *testing.T) {
	recs := []wal.Record{
		{Op: wal.OpPut, ID: "a", Text: "ta", Version: 4},
		{Op: wal.OpPut, ID: "b", Text: "tb", Version: 7},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathSync {
			http.NotFound(w, r)
			return
		}
		w.Write(EncodeSyncPayload(7, recs))
	}))
	defer ts.Close()

	n, err := New(Config{Self: "n1", Peers: map[string]string{"n1": "http://unused.invalid", "n2": ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CatchUp(context.Background(), 1); err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	if n.replica.Len() != 2 || n.replica.Applied("n2") != 7 {
		t.Fatalf("replica after catch-up: len=%d applied=%d", n.replica.Len(), n.replica.Applied("n2"))
	}

	bad, err := New(Config{Self: "n1", Peers: map[string]string{
		"n1": "http://unused.invalid",
		"n2": "http://127.0.0.1:1", // nothing listens here
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = bad.CatchUp(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "n2") {
		t.Fatalf("catch-up with dead peer: %v", err)
	}
}

// TestProbeFailoverAndRecovery: a peer that stops answering pings is
// marked down within a probe interval or one reported proxy failure, and
// comes back up once it answers again.
func TestProbeFailoverAndRecovery(t *testing.T) {
	fs := newFollowerServer(t, "n2", map[string]string{"n1": "http://unused.invalid"})
	n, err := New(Config{
		Self:          "n1",
		Peers:         map[string]string{"n1": "http://unused.invalid", "n2": fs.ts.URL},
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	if !n.Up("n2") {
		t.Fatal("healthy peer reported down at start")
	}
	fs.down.Store(true)
	waitFor(t, 2*time.Second, "probe to mark the peer down", func() bool { return !n.Up("n2") })
	fs.down.Store(false)
	waitFor(t, 2*time.Second, "probe to mark the peer up again", func() bool { return n.Up("n2") })

	// A live proxy failure opens the breaker without waiting for a probe
	// (the prober may race and close it again since the server is healthy,
	// so assert on the immediate state change).
	n.ReportPeerFailure("n2")
	st := n.Status()
	if len(st.Peers) != 1 || st.Peers[0].ID != "n2" {
		t.Fatalf("status peers: %+v", st.Peers)
	}
	// Self is always up; unknown peers are not.
	if !n.Up("n1") || n.Up("nope") {
		t.Fatal("Up(self)/Up(unknown) wrong")
	}
}
