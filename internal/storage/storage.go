// Package storage defines the relational storage layer: the Backend
// interface every table engine implements, the in-memory heap table that
// substitutes for the paper's Oracle 9i substrate, and the DB that binds a
// schema to per-relation backends.
//
// The paper's cost model (Section 7.1) charges b milliseconds per disk block
// read, assumes full scans with no indexes, and keeps intermediate results in
// memory. Every backend implements exactly that model: tables are heap files
// of rows packed into fixed-size blocks, scans account block reads against an
// IOCounter, and the block arithmetic (BlockTally) is shared so the in-memory
// and persistent backends report identical block counts for identical data —
// the paper's cost metrics stay backend-independent. The persistent
// block-store backend lives in internal/blockstore.
package storage

import (
	"fmt"
	"io"

	"cqp/internal/fault"
	"cqp/internal/obs"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// DefaultBlockSize is the block size in bytes used unless overridden.
// 8 KiB matches a typical DBMS page.
const DefaultBlockSize = 8192

// rowOverhead is the per-row header charge in bytes (slot pointer + header),
// making block counts behave like a slotted-page layout.
const rowOverhead = 8

// Row is one tuple. Positions align with the relation's columns.
type Row []value.Value

// Clone returns a copy of the row sharing value payloads (values are
// immutable, so sharing is safe).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Width returns the row's storage footprint in bytes, including overhead.
func (r Row) Width() int {
	w := rowOverhead
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// IOCounter accumulates simulated block reads. A single counter is threaded
// through an execution so that the total reflects one query's I/O.
type IOCounter struct {
	BlockReads int64
}

// Add charges n block reads.
func (c *IOCounter) Add(n int64) {
	if c != nil {
		c.BlockReads += n
	}
}

// BlockTally tracks the logical heap-file geometry of a table under the
// paper's block model: rows packed into fixed-size blocks in insertion
// order, each charged Row.Width bytes. Both the in-memory and the
// persistent backends advance a BlockTally identically, so Blocks() — the
// quantity the estimator and the cost model consume — is
// backend-independent by construction.
type BlockTally struct {
	BlockSize int
	// Blocks is the number of (virtual) blocks occupied so far.
	Blocks int64
	// Used is the number of bytes used in the last block.
	Used int
}

// Add appends one row of the given width, opening a new block when the
// current one cannot hold it.
func (t *BlockTally) Add(width int) {
	if t.Blocks == 0 || t.Used+width > t.BlockSize {
		t.Blocks++
		t.Used = 0
	}
	t.Used += width
}

// Cursor is a pull cursor over a table's rows in insertion order. The
// returned row slice is only valid until the next call to Next unless the
// caller clones it (values themselves are immutable and safe to share).
type Cursor interface {
	// Next returns the next row. ok is false once the cursor is exhausted.
	Next() (row Row, ok bool, err error)
	// Close releases the cursor. Backends may recycle closed cursors.
	Close() error
}

// Backend is one relation's storage engine: the in-memory heap table here,
// or the persistent block store in internal/blockstore. Backends are safe
// for concurrent reads; mutation (Insert, ReadCSV) must not race with open
// cursors.
type Backend interface {
	// Relation returns the table's relation definition.
	Relation() *schema.Relation
	// RowCount returns the number of stored tuples.
	RowCount() int
	// Blocks returns the number of logical blocks the table occupies under
	// the paper's block model (identical across backends for the same data).
	Blocks() int64
	// BlockSize returns the block size in bytes.
	BlockSize() int
	// Insert validates a tuple against the relation and appends it.
	Insert(Row) error
	// MustInsert is Insert panicking on error; for generators and tests.
	MustInsert(vals ...value.Value)
	// Open starts a full-table scan, charging the table's logical block
	// count to io up front (the model has no indexes: a scan pays for the
	// whole heap file even if the consumer stops early).
	Open(io *IOCounter) (Cursor, error)
	// OpenRaw starts a maintenance scan: no I/O accounting, no scan
	// metrics, and exempt from the storage.scan query-path fault point
	// (statistics builds and CSV exports are catalog work, not query
	// work). Physical read failures of persistent backends still surface.
	OpenRaw() (Cursor, error)
	// Scan is a convenience full scan driving fn over Open/Next/Close.
	// Returning false from fn stops the scan early.
	Scan(io *IOCounter, fn func(Row) bool) error
	// ReadCSV bulk-loads CSV data (see package docs); the load is atomic.
	ReadCSV(r io.Reader) (int, error)
	// WriteCSV dumps the table as CSV with a header row of column names.
	WriteCSV(w io.Writer) error
	// SetMetrics attaches per-table scan instruments (nil counters detach).
	SetMetrics(scans, blockReads, rowsScanned *obs.Counter)
	// Close releases backend resources (a no-op for the in-memory table).
	Close() error
}

// PrepareRow validates a tuple against the relation, coercing values to the
// declared column types, and returns the coerced row and its logical width.
// Shared by every backend's Insert.
func PrepareRow(rel *schema.Relation, r Row, blockSize int) (Row, int, error) {
	if len(r) != len(rel.Columns) {
		return nil, 0, fmt.Errorf("storage: %s expects %d values, got %d",
			rel.Name, len(rel.Columns), len(r))
	}
	row := make(Row, len(r))
	for i, v := range r {
		cv, err := v.CoerceTo(rel.Columns[i].Type)
		if err != nil {
			return nil, 0, fmt.Errorf("storage: %s.%s: %v", rel.Name, rel.Columns[i].Name, err)
		}
		row[i] = cv
	}
	w := row.Width()
	if w > blockSize {
		return nil, 0, fmt.Errorf("storage: row of %d bytes exceeds block size %d", w, blockSize)
	}
	return row, w, nil
}

// ScanBackend drives fn over a full scan of b, for backends implementing
// Scan in terms of Open.
func ScanBackend(b Backend, io *IOCounter, fn func(Row) bool) error {
	cur, err := b.Open(io)
	if err != nil {
		return err
	}
	return drainCursor(cur, fn)
}

// ScanRaw drives fn over a maintenance scan of b (see Backend.OpenRaw).
func ScanRaw(b Backend, fn func(Row) bool) error {
	cur, err := b.OpenRaw()
	if err != nil {
		return err
	}
	return drainCursor(cur, fn)
}

func drainCursor(cur Cursor, fn func(Row) bool) error {
	defer cur.Close()
	for {
		row, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(row) {
			return nil
		}
	}
}

// AllRows materializes a maintenance scan of b, cloning each row. For
// statistics builders and tests.
func AllRows(b Backend) ([]Row, error) {
	var out []Row
	err := ScanRaw(b, func(r Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out, err
}

// Table is the in-memory heap file: rows packed into blocks in insertion
// order. It implements Backend.
type Table struct {
	rel       *schema.Relation
	rows      []Row
	blockSize int
	tally     BlockTally

	// Per-table scan instruments, cached once by DB.SetMetrics so the scan
	// loop records with a single atomic add (nil — a no-op — until then).
	mBlockReads  *obs.Counter
	mRowsScanned *obs.Counter
	mScans       *obs.Counter
}

// NewTable creates an empty heap table for the relation.
func NewTable(rel *schema.Relation, blockSize int) *Table {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Table{rel: rel, blockSize: blockSize, tally: BlockTally{BlockSize: blockSize}}
}

// Relation returns the table's relation definition.
func (t *Table) Relation() *schema.Relation { return t.rel }

// RowCount returns the number of stored tuples.
func (t *Table) RowCount() int { return len(t.rows) }

// Blocks returns the number of blocks the heap file occupies.
func (t *Table) Blocks() int64 { return t.tally.Blocks }

// BlockSize returns the block size in bytes.
func (t *Table) BlockSize() int { return t.blockSize }

// Insert validates a tuple against the relation and appends it.
// Values are coerced to the declared column types where possible.
func (t *Table) Insert(r Row) error {
	row, w, err := PrepareRow(t.rel, r, t.blockSize)
	if err != nil {
		return err
	}
	t.tally.Add(w)
	t.rows = append(t.rows, row)
	return nil
}

// MustInsert is Insert panicking on error; for generators and tests.
func (t *Table) MustInsert(vals ...value.Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// Scan performs a full table scan, charging the table's block count to the
// counter and invoking fn for each row. fn must not retain the row slice
// beyond the call unless it clones it. Returning false stops the scan early
// (the full block charge still applies: the model has no indexes, a scan
// reads the whole heap file). The error return models read failures — the
// in-memory store itself cannot fail, but the fault harness's storage.scan
// point injects here, standing in for the disk and page-cache errors a real
// heap file would surface.
func (t *Table) Scan(io *IOCounter, fn func(Row) bool) error {
	return ScanBackend(t, io, fn)
}

// Open starts a full scan. The block charge and the storage.scan fault
// point fire at open, mirroring the old eager Scan: a query pays for every
// relation it opens even if the iterator tree never drains it.
func (t *Table) Open(io *IOCounter) (Cursor, error) {
	if err := fault.Inject(fault.StorageScan); err != nil {
		return nil, fmt.Errorf("storage: scan %s: %w", t.rel.Name, err)
	}
	io.Add(t.tally.Blocks)
	t.mScans.Inc()
	t.mBlockReads.Add(t.tally.Blocks)
	return &memCursor{t: t, metered: true}, nil
}

// OpenRaw starts a maintenance scan: no fault point, no charge, no metrics.
func (t *Table) OpenRaw() (Cursor, error) {
	return &memCursor{t: t}, nil
}

// memCursor iterates the heap table's row slice.
type memCursor struct {
	t       *Table
	i       int
	scanned int64
	metered bool
}

func (c *memCursor) Next() (Row, bool, error) {
	if c.i >= len(c.t.rows) {
		return nil, false, nil
	}
	r := c.t.rows[c.i]
	c.i++
	c.scanned++
	return r, true, nil
}

func (c *memCursor) Close() error {
	if c.metered {
		c.t.mRowsScanned.Add(c.scanned)
	}
	c.scanned = 0
	return nil
}

// Rows returns the backing row slice for read-only access without I/O
// accounting. Used by tests; backend-independent callers use AllRows.
func (t *Table) Rows() []Row { return t.rows }

// SetMetrics attaches per-table scan instruments.
func (t *Table) SetMetrics(scans, blockReads, rowsScanned *obs.Counter) {
	t.mScans, t.mBlockReads, t.mRowsScanned = scans, blockReads, rowsScanned
}

// Close is a no-op for the in-memory table.
func (t *Table) Close() error { return nil }

// DB binds a schema to its per-relation backends.
type DB struct {
	schema    *schema.Schema
	tables    map[string]Backend
	blockSize int
	metrics   *obs.Registry
}

// SetMetrics attaches a metrics registry to the store: every table scan
// then records storage_scans_total, storage_block_reads_total and
// storage_rows_scanned_total, labeled per table. Passing nil detaches.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.metrics = reg
	for name, t := range db.tables {
		if reg == nil {
			t.SetMetrics(nil, nil, nil)
			continue
		}
		t.SetMetrics(
			reg.Counter("storage_scans_total", "table", name),
			reg.Counter("storage_block_reads_total", "table", name),
			reg.Counter("storage_rows_scanned_total", "table", name))
	}
}

// Metrics returns the attached registry (nil when observability is off).
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// NewDB creates an empty in-memory database over the schema with one heap
// table per relation.
func NewDB(s *schema.Schema, blockSize int) *DB {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	db := &DB{schema: s, tables: make(map[string]Backend), blockSize: blockSize}
	for _, r := range s.Relations() {
		db.tables[r.Name] = NewTable(r, blockSize)
	}
	return db
}

// NewDBWith creates a database whose per-relation backends come from open —
// how the persistent block store plugs in underneath the executor. On error
// the backends opened so far are closed.
func NewDBWith(s *schema.Schema, blockSize int, open func(*schema.Relation) (Backend, error)) (*DB, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	db := &DB{schema: s, tables: make(map[string]Backend), blockSize: blockSize}
	for _, r := range s.Relations() {
		b, err := open(r)
		if err != nil {
			db.Close()
			return nil, err
		}
		db.tables[r.Name] = b
	}
	return db, nil
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.schema }

// BlockSize returns the database block size in bytes.
func (db *DB) BlockSize() int { return db.blockSize }

// Table returns the backend for the relation, or an error.
func (db *DB) Table(name string) (Backend, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no table %s", name)
	}
	return t, nil
}

// MustTable returns the backend or panics; for generators and tests.
func (db *DB) MustTable(name string) Backend {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TotalBlocks sums block counts over all tables.
func (db *DB) TotalBlocks() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.Blocks()
	}
	return n
}

// Close closes every backend, returning the first error.
func (db *DB) Close() error {
	var first error
	for _, t := range db.tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
