// Package storage implements the in-memory relational store that substitutes
// for the paper's Oracle 9i substrate.
//
// The paper's cost model (Section 7.1) charges b milliseconds per disk block
// read, assumes full scans with no indexes, and keeps intermediate results in
// memory. This store implements exactly that model: tables are heap files of
// rows packed into fixed-size blocks, scans account block reads against an
// IOCounter, and everything else is memory-resident. "Real" execution cost in
// Figure 15 is the counter's block total multiplied by b.
package storage

import (
	"fmt"

	"cqp/internal/fault"
	"cqp/internal/obs"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// DefaultBlockSize is the block size in bytes used unless overridden.
// 8 KiB matches a typical DBMS page.
const DefaultBlockSize = 8192

// rowOverhead is the per-row header charge in bytes (slot pointer + header),
// making block counts behave like a slotted-page layout.
const rowOverhead = 8

// Row is one tuple. Positions align with the relation's columns.
type Row []value.Value

// Clone returns a copy of the row sharing value payloads (values are
// immutable, so sharing is safe).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Width returns the row's storage footprint in bytes, including overhead.
func (r Row) Width() int {
	w := rowOverhead
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// IOCounter accumulates simulated block reads. A single counter is threaded
// through an execution so that the total reflects one query's I/O.
type IOCounter struct {
	BlockReads int64
}

// Add charges n block reads.
func (c *IOCounter) Add(n int64) {
	if c != nil {
		c.BlockReads += n
	}
}

// Table is a heap file: rows packed into blocks in insertion order.
type Table struct {
	rel       *schema.Relation
	rows      []Row
	blockSize int

	// curBlockUsed tracks bytes used in the (virtual) last block so Blocks()
	// is O(1) and insertion-order dependent, like a real heap file.
	blocks       int64
	curBlockUsed int

	// Per-table scan instruments, cached once by DB.SetMetrics so the scan
	// loop records with a single atomic add (nil — a no-op — until then).
	mBlockReads  *obs.Counter
	mRowsScanned *obs.Counter
	mScans       *obs.Counter
}

// NewTable creates an empty heap table for the relation.
func NewTable(rel *schema.Relation, blockSize int) *Table {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Table{rel: rel, blockSize: blockSize}
}

// Relation returns the table's relation definition.
func (t *Table) Relation() *schema.Relation { return t.rel }

// RowCount returns the number of stored tuples.
func (t *Table) RowCount() int { return len(t.rows) }

// Blocks returns the number of blocks the heap file occupies.
func (t *Table) Blocks() int64 { return t.blocks }

// BlockSize returns the block size in bytes.
func (t *Table) BlockSize() int { return t.blockSize }

// Insert validates a tuple against the relation and appends it.
// Values are coerced to the declared column types where possible.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.rel.Columns) {
		return fmt.Errorf("storage: %s expects %d values, got %d",
			t.rel.Name, len(t.rel.Columns), len(r))
	}
	row := make(Row, len(r))
	for i, v := range r {
		cv, err := v.CoerceTo(t.rel.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("storage: %s.%s: %v", t.rel.Name, t.rel.Columns[i].Name, err)
		}
		row[i] = cv
	}
	w := row.Width()
	if w > t.blockSize {
		return fmt.Errorf("storage: row of %d bytes exceeds block size %d", w, t.blockSize)
	}
	if t.blocks == 0 || t.curBlockUsed+w > t.blockSize {
		t.blocks++
		t.curBlockUsed = 0
	}
	t.curBlockUsed += w
	t.rows = append(t.rows, row)
	return nil
}

// MustInsert is Insert panicking on error; for generators and tests.
func (t *Table) MustInsert(vals ...value.Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// Scan performs a full table scan, charging the table's block count to the
// counter and invoking fn for each row. fn must not retain the row slice
// beyond the call unless it clones it. Returning false stops the scan early
// (the full block charge still applies: the model has no indexes, a scan
// reads the whole heap file). The error return models read failures — the
// in-memory store itself cannot fail, but the fault harness's storage.scan
// point injects here, standing in for the disk and page-cache errors a real
// heap file would surface.
func (t *Table) Scan(io *IOCounter, fn func(Row) bool) error {
	if err := fault.Inject(fault.StorageScan); err != nil {
		return fmt.Errorf("storage: scan %s: %w", t.rel.Name, err)
	}
	io.Add(t.blocks)
	t.mScans.Inc()
	t.mBlockReads.Add(t.blocks)
	scanned := 0
	for _, r := range t.rows {
		scanned++
		if !fn(r) {
			break
		}
	}
	t.mRowsScanned.Add(int64(scanned))
	return nil
}

// Rows returns the backing row slice for read-only access without I/O
// accounting. Used by statistics builders, which model catalog metadata
// maintained outside query execution.
func (t *Table) Rows() []Row { return t.rows }

// DB binds a schema to its tables.
type DB struct {
	schema    *schema.Schema
	tables    map[string]*Table
	blockSize int
	metrics   *obs.Registry
}

// SetMetrics attaches a metrics registry to the store: every table scan
// then records storage_scans_total, storage_block_reads_total and
// storage_rows_scanned_total, labeled per table. Passing nil detaches.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.metrics = reg
	for name, t := range db.tables {
		if reg == nil {
			t.mScans, t.mBlockReads, t.mRowsScanned = nil, nil, nil
			continue
		}
		t.mScans = reg.Counter("storage_scans_total", "table", name)
		t.mBlockReads = reg.Counter("storage_block_reads_total", "table", name)
		t.mRowsScanned = reg.Counter("storage_rows_scanned_total", "table", name)
	}
}

// Metrics returns the attached registry (nil when observability is off).
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// NewDB creates an empty database over the schema with one table per
// relation.
func NewDB(s *schema.Schema, blockSize int) *DB {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	db := &DB{schema: s, tables: make(map[string]*Table), blockSize: blockSize}
	for _, r := range s.Relations() {
		db.tables[r.Name] = NewTable(r, blockSize)
	}
	return db
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.schema }

// BlockSize returns the database block size in bytes.
func (db *DB) BlockSize() int { return db.blockSize }

// Table returns the heap table for the relation, or an error.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no table %s", name)
	}
	return t, nil
}

// MustTable returns the table or panics; for generators and tests.
func (db *DB) MustTable(name string) *Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TotalBlocks sums block counts over all tables.
func (db *DB) TotalBlocks() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.blocks
	}
	return n
}
