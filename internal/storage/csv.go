package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cqp/internal/value"
)

// WriteCSVTo dumps any backend as CSV with a header row of column names,
// scanning without I/O accounting (CSV export is an offline operation, not
// query work). Values render with Value.String (unquoted strings;
// encoding/csv adds quoting as needed).
func WriteCSVTo(b Backend, w io.Writer) error {
	rel := b.Relation()
	cw := csv.NewWriter(w)
	header := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("storage: csv header: %v", err)
	}
	record := make([]string, len(header))
	err := ScanRaw(b, func(row Row) bool {
		for i, v := range row {
			if v.IsNull() {
				record[i] = "" // NULL round-trips as the empty field
				continue
			}
			record[i] = v.String()
		}
		if err := cw.Write(record); err != nil {
			return false
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("storage: csv scan: %v", err)
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV dumps the table as CSV with a header row of column names.
func (t *Table) WriteCSV(w io.Writer) error { return WriteCSVTo(t, w) }

// ReadCSVInto is the shared CSV-ingest loop: header validation, column
// permutation, typed field parsing, one Insert call per record. Backends
// wrap it with their own rollback to make loads atomic.
func ReadCSVInto(b Backend, r io.Reader) (int, error) {
	rel := b.Relation()
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("storage: csv header: %v", err)
	}
	if len(header) != len(rel.Columns) {
		return 0, fmt.Errorf("storage: csv header has %d columns, relation %s has %d",
			len(header), rel.Name, len(rel.Columns))
	}
	// Map CSV positions onto relation positions.
	perm := make([]int, len(header))
	seen := make(map[string]bool, len(header))
	for i, name := range header {
		idx := rel.ColumnIndex(name)
		if idx < 0 {
			return 0, fmt.Errorf("storage: csv column %q not in relation %s", name, rel.Name)
		}
		if seen[name] {
			return 0, fmt.Errorf("storage: duplicate csv column %q", name)
		}
		seen[name] = true
		perm[i] = idx
	}
	loaded := 0
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			return loaded, nil
		}
		if err != nil {
			return loaded, fmt.Errorf("storage: csv line %d: %v", line, err)
		}
		row := make(Row, len(rel.Columns))
		for i, field := range record {
			v, err := parseCSVField(field, rel.Columns[perm[i]].Type)
			if err != nil {
				return loaded, fmt.Errorf("storage: csv line %d, column %s: %v",
					line, header[i], err)
			}
			row[perm[i]] = v
		}
		if err := b.Insert(row); err != nil {
			return loaded, fmt.Errorf("storage: csv line %d: %v", line, err)
		}
		loaded++
	}
}

// ReadCSV bulk-loads CSV data into the table. The first record must be a
// header naming a permutation of the relation's columns (all columns
// required). Fields parse according to the declared column types; empty
// fields load as NULL.
//
// The load is atomic: on any error — malformed header, short record, type
// mismatch mid-file — the table rolls back to its pre-call state, so a
// failed load never leaves partial rows (or their block accounting)
// visible to scans.
func (t *Table) ReadCSV(r io.Reader) (n int, err error) {
	// Snapshot the heap-file state; Insert only appends, so truncating the
	// row slice and restoring the block cursor is a complete rollback.
	snapRows, snapTally := len(t.rows), t.tally
	defer func() {
		if err != nil {
			t.rows = t.rows[:snapRows]
			t.tally = snapTally
			n = 0
		}
	}()
	return ReadCSVInto(t, r)
}

// parseCSVField converts one CSV field to a value of the column's kind.
func parseCSVField(field string, kind value.Kind) (value.Value, error) {
	if field == "" {
		return value.Null(), nil
	}
	switch kind {
	case value.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad INT %q", field)
		}
		return value.Int(n), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad FLOAT %q", field)
		}
		return value.Float(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad BOOLEAN %q", field)
		}
		return value.Bool(b), nil
	default:
		return value.Str(field), nil
	}
}
