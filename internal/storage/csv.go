package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cqp/internal/value"
)

// WriteCSV dumps the table as CSV with a header row of column names.
// Values render with Value.String (unquoted strings; encoding/csv adds
// quoting as needed).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.rel.Columns))
	for i, c := range t.rel.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("storage: csv header: %v", err)
	}
	record := make([]string, len(header))
	for _, row := range t.rows {
		for i, v := range row {
			if v.IsNull() {
				record[i] = "" // NULL round-trips as the empty field
				continue
			}
			record[i] = v.String()
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("storage: csv row: %v", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV bulk-loads CSV data into the table. The first record must be a
// header naming a subset ordering of the relation's columns (all columns
// required). Fields parse according to the declared column types; empty
// fields load as NULL.
//
// The load is atomic: on any error — malformed header, short record, type
// mismatch mid-file — the table rolls back to its pre-call state, so a
// failed load never leaves partial rows (or their block accounting)
// visible to scans.
func (t *Table) ReadCSV(r io.Reader) (n int, err error) {
	// Snapshot the heap-file state; Insert only appends, so truncating the
	// row slice and restoring the block cursor is a complete rollback.
	snapRows, snapBlocks, snapUsed := len(t.rows), t.blocks, t.curBlockUsed
	defer func() {
		if err != nil {
			t.rows = t.rows[:snapRows]
			t.blocks, t.curBlockUsed = snapBlocks, snapUsed
			n = 0
		}
	}()
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("storage: csv header: %v", err)
	}
	if len(header) != len(t.rel.Columns) {
		return 0, fmt.Errorf("storage: csv header has %d columns, relation %s has %d",
			len(header), t.rel.Name, len(t.rel.Columns))
	}
	// Map CSV positions onto relation positions.
	perm := make([]int, len(header))
	seen := make(map[string]bool, len(header))
	for i, name := range header {
		idx := t.rel.ColumnIndex(name)
		if idx < 0 {
			return 0, fmt.Errorf("storage: csv column %q not in relation %s", name, t.rel.Name)
		}
		if seen[name] {
			return 0, fmt.Errorf("storage: duplicate csv column %q", name)
		}
		seen[name] = true
		perm[i] = idx
	}
	loaded := 0
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			return loaded, nil
		}
		if err != nil {
			return loaded, fmt.Errorf("storage: csv line %d: %v", line, err)
		}
		row := make(Row, len(t.rel.Columns))
		for i, field := range record {
			v, err := parseCSVField(field, t.rel.Columns[perm[i]].Type)
			if err != nil {
				return loaded, fmt.Errorf("storage: csv line %d, column %s: %v",
					line, header[i], err)
			}
			row[perm[i]] = v
		}
		if err := t.Insert(row); err != nil {
			return loaded, fmt.Errorf("storage: csv line %d: %v", line, err)
		}
		loaded++
	}
}

// parseCSVField converts one CSV field to a value of the column's kind.
func parseCSVField(field string, kind value.Kind) (value.Value, error) {
	if field == "" {
		return value.Null(), nil
	}
	switch kind {
	case value.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad INT %q", field)
		}
		return value.Int(n), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad FLOAT %q", field)
		}
		return value.Float(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad BOOLEAN %q", field)
		}
		return value.Bool(b), nil
	default:
		return value.Str(field), nil
	}
}
