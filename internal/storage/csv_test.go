package storage

import (
	"strings"
	"testing"

	"cqp/internal/schema"
	"cqp/internal/value"
)

func csvRelation(t *testing.T) *schema.Relation {
	t.Helper()
	r, err := schema.NewRelation("M", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "title", Type: value.KindString},
		{Name: "score", Type: value.KindFloat},
		{Name: "seen", Type: value.KindBool},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCSVRoundTrip(t *testing.T) {
	src := NewTable(csvRelation(t), 0)
	src.MustInsert(value.Int(1), value.Str("Plain"), value.Float(4.5), value.Bool(true))
	src.MustInsert(value.Int(2), value.Str("Comma, Inc"), value.Float(3), value.Bool(false))
	src.MustInsert(value.Int(3), value.Str(`Quote "Q"`), value.Float(-1.25), value.Bool(true))
	src.MustInsert(value.Int(4), value.Null(), value.Null(), value.Null())

	var buf strings.Builder
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewTable(csvRelation(t), 0)
	n, err := dst.ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || dst.RowCount() != 4 {
		t.Fatalf("loaded %d rows", n)
	}
	for i, want := range src.Rows() {
		got := dst.Rows()[i]
		for j := range want {
			// NULL strings round-trip as NULL (empty field); "NULL" text in
			// a VARCHAR would not, which is acceptable for the dump format.
			if want[j].IsNull() {
				if !got[j].IsNull() {
					t.Errorf("row %d col %d: want NULL, got %v", i, j, got[j])
				}
				continue
			}
			if !got[j].Equal(want[j]) {
				t.Errorf("row %d col %d: got %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestReadCSVHeaderPermutation(t *testing.T) {
	dst := NewTable(csvRelation(t), 0)
	src := "title,id,seen,score\nHello,7,true,2.5\n"
	if _, err := dst.ReadCSV(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	row := dst.Rows()[0]
	if row[0].AsInt() != 7 || row[1].AsStr() != "Hello" || row[2].AsFloat() != 2.5 || !row[3].AsBool() {
		t.Errorf("permuted load wrong: %v", row)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                     // no header
		"id,title,score\n",                     // missing column
		"id,title,score,seen,x\n",              // too many... header len mismatch
		"id,title,score,nope\n",                // unknown column
		"id,id,score,seen\n",                   // duplicate column
		"id,title,score,seen\nx,a,1,true\n",    // bad int
		"id,title,score,seen\n1,a,x,true\n",    // bad float
		"id,title,score,seen\n1,a,1.5,maybe\n", // bad bool
		"id,title,score,seen\n1,a,1.5\n",       // short record
	}
	for _, src := range cases {
		dst := NewTable(csvRelation(t), 0)
		n, err := dst.ReadCSV(strings.NewReader(src))
		if err == nil {
			t.Errorf("ReadCSV(%q) should fail", src)
		}
		if n != 0 || dst.RowCount() != 0 {
			t.Errorf("ReadCSV(%q): failed load left n=%d rows=%d", src, n, dst.RowCount())
		}
	}
}

// TestReadCSVAtomicRollback drives every mid-load failure mode and asserts
// the load is all-or-nothing: after a failed ReadCSV the table holds exactly
// its pre-call rows and block accounting, and a subsequent good load works.
func TestReadCSVAtomicRollback(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"type mismatch mid-file", "id,title,score,seen\n1,a,1.5,true\n2,b,bad,false\n3,c,2.5,true\n"},
		{"short record mid-file", "id,title,score,seen\n1,a,1.5,true\n2,b,3.5\n"},
		{"long record mid-file", "id,title,score,seen\n1,a,1.5,true\n2,b,3.5,false,extra\n"},
		{"duplicate header column", "id,id,score,seen\n1,2,1.5,true\n"},
		{"missing header column", "id,title,score\n1,a,1.5\n"},
		{"unknown header column", "id,title,score,nope\n1,a,1.5,true\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := NewTable(csvRelation(t), 0)
			dst.MustInsert(value.Int(100), value.Str("kept"), value.Float(9), value.Bool(true))
			wantRows, wantBlocks := dst.RowCount(), dst.Blocks()

			n, err := dst.ReadCSV(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("ReadCSV(%q) should fail", tc.src)
			}
			if n != 0 {
				t.Errorf("failed load reported n=%d, want 0", n)
			}
			if dst.RowCount() != wantRows {
				t.Errorf("failed load left %d rows visible, want %d", dst.RowCount(), wantRows)
			}
			if dst.Blocks() != wantBlocks {
				t.Errorf("failed load left %d blocks, want %d", dst.Blocks(), wantBlocks)
			}
			if got := dst.Rows()[0][1].AsStr(); got != "kept" {
				t.Errorf("pre-existing row corrupted: %q", got)
			}

			// The table must still accept a clean load after rollback.
			n, err = dst.ReadCSV(strings.NewReader("id,title,score,seen\n7,ok,2.5,false\n"))
			if err != nil || n != 1 {
				t.Fatalf("reload after rollback: n=%d err=%v", n, err)
			}
			if dst.RowCount() != wantRows+1 {
				t.Errorf("reload: %d rows, want %d", dst.RowCount(), wantRows+1)
			}
		})
	}
}
