package storage

import (
	"testing"
	"testing/quick"

	"cqp/internal/schema"
	"cqp/internal/value"
)

func testRelation(t *testing.T) *schema.Relation {
	t.Helper()
	r, err := schema.NewRelation("MOVIE", []schema.Column{
		{Name: "mid", Type: value.KindInt},
		{Name: "title", Type: value.KindString},
		{Name: "year", Type: value.KindInt},
	}, "mid")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRowWidth(t *testing.T) {
	r := Row{value.Int(1), value.Str("abcd"), value.Int(2000)}
	// 8 overhead + 8 + (4+4) + 8 = 32
	if got := r.Width(); got != 32 {
		t.Errorf("Width = %d, want 32", got)
	}
	c := r.Clone()
	c[0] = value.Int(9)
	if r[0].AsInt() != 1 {
		t.Error("Clone must not alias")
	}
}

func TestInsertValidation(t *testing.T) {
	tb := NewTable(testRelation(t), 0)
	if tb.BlockSize() != DefaultBlockSize {
		t.Error("default block size not applied")
	}
	if err := tb.Insert(Row{value.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := tb.Insert(Row{value.Str("x"), value.Str("t"), value.Int(1)}); err == nil {
		t.Error("type mismatch should fail")
	}
	// Float that is integral coerces into INT column.
	if err := tb.Insert(Row{value.Float(5), value.Str("t"), value.Int(1999)}); err != nil {
		t.Errorf("coercible insert failed: %v", err)
	}
	if tb.RowCount() != 1 {
		t.Error("row count")
	}
	if tb.Rows()[0][0].Kind() != value.KindInt {
		t.Error("insert must store coerced value")
	}
}

func TestRowTooLarge(t *testing.T) {
	tb := NewTable(testRelation(t), 24)
	err := tb.Insert(Row{value.Int(1), value.Str("this string is far too long"), value.Int(1)})
	if err == nil {
		t.Error("oversized row should fail")
	}
}

func TestBlockAccounting(t *testing.T) {
	// Block of 64 bytes; each row is 8+8+(4+1)+8 = 29 bytes, so 2 rows/block.
	tb := NewTable(testRelation(t), 64)
	for i := 0; i < 5; i++ {
		tb.MustInsert(value.Int(int64(i)), value.Str("t"), value.Int(2000))
	}
	if got := tb.Blocks(); got != 3 {
		t.Errorf("Blocks = %d, want 3 (2 rows per 64-byte block, 5 rows)", got)
	}
}

func TestBlocksMonotoneProperty(t *testing.T) {
	f := func(n uint8) bool {
		tb := NewTable(testRelation(t), 128)
		var prev int64
		for i := 0; i < int(n%64); i++ {
			tb.MustInsert(value.Int(int64(i)), value.Str("title"), value.Int(1990))
			if tb.Blocks() < prev {
				return false
			}
			prev = tb.Blocks()
		}
		// Blocks is 0 iff no rows.
		return (tb.RowCount() == 0) == (tb.Blocks() == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanChargesBlocks(t *testing.T) {
	tb := NewTable(testRelation(t), 64)
	for i := 0; i < 4; i++ {
		tb.MustInsert(value.Int(int64(i)), value.Str("t"), value.Int(2000))
	}
	var io IOCounter
	var seen int
	if err := tb.Scan(&io, func(Row) bool { seen++; return true }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if seen != 4 {
		t.Errorf("scanned %d rows", seen)
	}
	if io.BlockReads != tb.Blocks() {
		t.Errorf("io = %d, want %d", io.BlockReads, tb.Blocks())
	}
	// Early stop still charges the full scan (no indexes in the model).
	io = IOCounter{}
	if err := tb.Scan(&io, func(Row) bool { return false }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if io.BlockReads != tb.Blocks() {
		t.Errorf("early-stop io = %d, want %d", io.BlockReads, tb.Blocks())
	}
	// Nil counter must be safe.
	if err := tb.Scan(nil, func(Row) bool { return true }); err != nil {
		t.Fatalf("Scan with nil counter: %v", err)
	}
}

func TestDB(t *testing.T) {
	s := schema.New()
	s.MustAddRelation("A", "", schema.Column{Name: "x", Type: value.KindInt})
	s.MustAddRelation("B", "", schema.Column{Name: "y", Type: value.KindInt})
	db := NewDB(s, 64)
	if db.Schema() != s || db.BlockSize() != 64 {
		t.Error("db accessors")
	}
	a, err := db.Table("A")
	if err != nil {
		t.Fatal(err)
	}
	a.MustInsert(value.Int(1))
	db.MustTable("B").MustInsert(value.Int(2))
	if _, err := db.Table("Z"); err == nil {
		t.Error("missing table should error")
	}
	if db.TotalBlocks() != 2 {
		t.Errorf("TotalBlocks = %d", db.TotalBlocks())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable(Z) should panic")
		}
	}()
	db.MustTable("Z")
}
