package exec

import (
	"testing"

	"cqp/internal/testutil"
)

func TestOrderByExecution(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title, year FROM MOVIE ORDER BY year DESC, title")
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if prev[1].AsInt() < cur[1].AsInt() {
			t.Fatalf("year not descending at %d: %v then %v", i, prev, cur)
		}
		if prev[1].AsInt() == cur[1].AsInt() && prev[0].String() > cur[0].String() {
			t.Fatalf("title tiebreak not ascending at %d", i)
		}
	}
}

func TestLimitExecution(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title, year FROM MOVIE ORDER BY year LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].AsInt() != 1958 || res.Rows[1][1].AsInt() != 1960 {
		t.Errorf("top-2 oldest: %v", res.Rows)
	}
	// Limit larger than the result is a no-op.
	res2 := evalSQL(t, db, "SELECT title FROM MOVIE LIMIT 100")
	if len(res2.Rows) != 6 {
		t.Errorf("rows = %d", len(res2.Rows))
	}
}
