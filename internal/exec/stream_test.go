package exec

import (
	"context"
	"sort"
	"strings"
	"testing"

	"cqp/internal/iter"
	"cqp/internal/query"
	"cqp/internal/sqlparse"
	"cqp/internal/storage"
	"cqp/internal/testutil"
	"cqp/internal/workload"
)

func canonRows(rows []storage.Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.SQL() + "|"
		}
		keys[i] = s
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// A tight spill budget must change neither the result multiset nor the
// charged I/O of a join-heavy query — only where the working state lives.
func TestEvalSpillBudgetEquivalence(t *testing.T) {
	db := workload.GenerateDB(workload.DBConfig{Movies: 400, Directors: 40, Actors: 200, Seed: 3})
	q := sqlparse.MustParse(db.Schema(), `SELECT title, name FROM MOVIE, DIRECTOR, GENRE
		WHERE MOVIE.did = DIRECTOR.did AND MOVIE.mid = GENRE.mid AND MOVIE.year >= 1940`)

	plain, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	r0, _, _ := iter.SpillStats()
	ctx := iter.WithBudget(context.Background(), iter.Budget{Bytes: 2048, Dir: t.TempDir()})
	spilled, err := EvalContext(ctx, db, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1, _, _ := iter.SpillStats(); r1 == r0 {
		t.Fatal("a 2 KiB budget over this join did not spill")
	}
	if canonRows(spilled.Rows) != canonRows(plain.Rows) {
		t.Fatalf("spilled evaluation changed the result: %d vs %d rows", len(spilled.Rows), len(plain.Rows))
	}
	if spilled.BlockReads != plain.BlockReads {
		t.Fatalf("spill changed charged I/O: %d vs %d", spilled.BlockReads, plain.BlockReads)
	}
}

// DISTINCT under a spill budget must keep exact set semantics.
func TestEvalDistinctSpillEquivalence(t *testing.T) {
	db := workload.GenerateDB(workload.DBConfig{Movies: 400, Directors: 40, Actors: 200, Seed: 3})
	q := sqlparse.MustParse(db.Schema(), `SELECT DISTINCT name FROM MOVIE, DIRECTOR
		WHERE MOVIE.did = DIRECTOR.did`)
	plain, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := iter.WithBudget(context.Background(), iter.Budget{Bytes: 128, Dir: t.TempDir()})
	spilled, err := EvalContext(ctx, db, q)
	if err != nil {
		t.Fatal(err)
	}
	if canonRows(spilled.Rows) != canonRows(plain.Rows) {
		t.Fatalf("spilled DISTINCT differs: %d vs %d rows", len(spilled.Rows), len(plain.Rows))
	}
}

func unionFixture(t *testing.T, db *storage.DB) ([]*query.Query, []float64) {
	t.Helper()
	genres := []string{"comedy", "drama", "horror", "musical"}
	subs := make([]*query.Query, 0, len(genres))
	dois := make([]float64, 0, len(genres))
	for i, g := range genres {
		subs = append(subs, sqlparse.MustParse(db.Schema(),
			"SELECT title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = '"+g+"'"))
		dois = append(dois, 0.15*float64(i+1))
	}
	return subs, dois
}

// EvalUnionTopK must return exactly the first k rows of the full ranked
// union, and the same stats.
func TestEvalUnionTopKMatchesFull(t *testing.T) {
	db := testutil.MovieDB(0)
	subs, dois := unionFixture(t, db)
	full, err := EvalUnion(db, subs, dois, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 3 {
		t.Fatalf("fixture too small: %d union rows", len(full.Rows))
	}
	for k := 1; k <= len(full.Rows)+2; k++ {
		topk, err := EvalUnionTopK(context.Background(), db, subs, dois, 1, k)
		if err != nil {
			t.Fatal(err)
		}
		want := len(full.Rows)
		if k < want {
			want = k
		}
		if len(topk.Rows) != want {
			t.Fatalf("k=%d: %d rows, want %d", k, len(topk.Rows), want)
		}
		for i := range topk.Rows {
			if compareRows(topk.Rows[i].Key, full.Rows[i].Key) != 0 || topk.Rows[i].Doi != full.Rows[i].Doi {
				t.Fatalf("k=%d row %d: %v (doi %g) != %v (doi %g)", k, i,
					topk.Rows[i].Key, topk.Rows[i].Doi, full.Rows[i].Key, full.Rows[i].Doi)
			}
		}
		if topk.BlockReads != full.BlockReads {
			t.Fatalf("k=%d: io %d != %d", k, topk.BlockReads, full.BlockReads)
		}
	}
	if _, err := EvalUnionTopK(context.Background(), db, subs, dois, 1, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}

// The union's group table under a spill budget must produce the same
// ranked answer as the unconstrained run.
func TestEvalUnionSpillEquivalence(t *testing.T) {
	db := workload.GenerateDB(workload.DBConfig{Movies: 500, Directors: 40, Actors: 200, Seed: 5})
	genres := []string{workload.GenreName(0), workload.GenreName(1), workload.GenreName(2)}
	var subs []*query.Query
	dois := []float64{0.7, 0.5, 0.3}
	for _, g := range genres {
		subs = append(subs, sqlparse.MustParse(db.Schema(),
			"SELECT title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = '"+g+"'"))
	}
	full, err := EvalUnion(db, subs, dois, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 50 {
		t.Fatalf("fixture too small: %d rows", len(full.Rows))
	}
	ctx := iter.WithBudget(context.Background(), iter.Budget{Bytes: 512, Dir: t.TempDir()})
	spilled, err := EvalUnionContext(ctx, db, subs, dois, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled.Rows) != len(full.Rows) {
		t.Fatalf("spilled union: %d rows, want %d", len(spilled.Rows), len(full.Rows))
	}
	for i := range full.Rows {
		if compareRows(spilled.Rows[i].Key, full.Rows[i].Key) != 0 || spilled.Rows[i].Doi != full.Rows[i].Doi {
			t.Fatalf("row %d differs under spill", i)
		}
	}
}

// LIMIT without ORDER BY pushes into the iterator tree but still charges
// the full scan (the paper's cost model pays per heap file, not per row
// pulled).
func TestLimitChargesFullScan(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title FROM MOVIE LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.BlockReads != db.MustTable("MOVIE").Blocks() {
		t.Fatalf("io = %d, want full scan charge %d", res.BlockReads, db.MustTable("MOVIE").Blocks())
	}
}
