// Package exec evaluates conjunctive queries and personalized union queries
// against a storage backend, with block-granular I/O accounting.
//
// The executor deliberately mirrors the paper's cost-model assumptions
// (Section 7.1): every relation in a (sub-)query is read from disk exactly
// once via a full scan (no indexes) and charged its full block count, and a
// personalized query executes its sub-queries independently, so a relation
// shared by two sub-queries is charged twice — exactly as Formula 6 sums
// per-sub-query costs. Figure 15's "real" execution time is the counter's
// block total times b plus the measured in-memory CPU time.
//
// Since the streaming rewrite, evaluation is a thin driver over an
// internal/iter operator tree: scans stream rows from backend cursors
// through filters, hash joins, projection and dedup, polling the context
// inside every loop. Intermediate results no longer materialize per
// stage — the stateful operators (join builds, DISTINCT sets, the union's
// group table) hold working state only, and spill it to temp-file
// partitions when a per-query budget (iter.WithBudget) says so. The block
// charge is unchanged by any of this: a scan pays its relation's full
// logical block count at open, even if a LIMIT stops pulling early,
// because that is the cost model the estimator mirrors.
package exec

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"cqp/internal/fault"
	"cqp/internal/iter"
	"cqp/internal/obs"
	"cqp/internal/prefs"
	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/storage"
)

// Result is the outcome of evaluating one conjunctive query.
type Result struct {
	// Columns names the projected attributes.
	Columns []schema.AttrRef
	// Rows holds the projected tuples (with duplicates unless the query is
	// DISTINCT).
	Rows []storage.Row
	// BlockReads is the simulated I/O charged to this evaluation.
	BlockReads int64
	// Elapsed is the wall-clock time of the in-memory evaluation.
	Elapsed time.Duration
}

// Eval evaluates a conjunctive SPJ query. It validates the query first.
func Eval(db *storage.DB, q *query.Query) (*Result, error) {
	return EvalContext(context.Background(), db, q)
}

// EvalContext is Eval honoring cancellation: the context is polled before
// the evaluation starts and inside every operator loop of the iterator
// tree, so an expired deadline stops a scan or a join build mid-stream.
func EvalContext(ctx context.Context, db *storage.DB, q *query.Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(db.Schema()); err != nil {
		return nil, err
	}
	start := time.Now()
	var io storage.IOCounter
	tree, cols, err := buildJoinTree(ctx, db, &io, q)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(q.Project))
	for i, p := range q.Project {
		idx[i] = cols[p]
	}
	tree = iter.Project(tree, idx)
	if q.Distinct {
		tree = iter.Distinct(ctx, tree)
	}
	if q.Limit > 0 && len(q.OrderBy) == 0 {
		// Without ORDER BY the limit pushes into the tree: operators below
		// never produce rows the consumer won't take.
		tree = iter.Limit(tree, q.Limit)
	}
	out, err := iter.Collect(tree)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		orderRows(out, q)
		if q.Limit > 0 && len(out) > q.Limit {
			out = out[:q.Limit]
		}
	}
	return &Result{
		Columns:    q.Project,
		Rows:       out,
		BlockReads: io.BlockReads,
		Elapsed:    time.Since(start),
	}, nil
}

// orderRows sorts projected rows by the query's ORDER BY keys (already
// validated to be projected attributes).
func orderRows(rows []storage.Row, q *query.Query) {
	idx := make([]int, len(q.OrderBy))
	for i, o := range q.OrderBy {
		for j, p := range q.Project {
			if p == o.Attr {
				idx[i] = j
				break
			}
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, o := range q.OrderBy {
			c := rows[a][idx[i]].Compare(rows[b][idx[i]])
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// colIndex maps attribute references to positions in an intermediate tuple.
type colIndex map[schema.AttrRef]int

// buildJoinTree assembles the iterator tree that scans, filters, and joins
// all relations of the query, returning a stream of wide tuples and a
// column index over them. Every relation's scan is opened (and its full
// block count charged) here, up front — the paper's model charges a query
// for each heap file it touches regardless of how much of the stream the
// consumer pulls.
func buildJoinTree(ctx context.Context, db *storage.DB, io *storage.IOCounter, q *query.Query) (iter.Iterator, colIndex, error) {
	// Per-relation pushed-down selections.
	selsFor := make(map[string][]query.Selection)
	for _, s := range q.Selections {
		selsFor[s.Attr.Relation] = append(selsFor[s.Attr.Relation], s)
	}
	var opened []iter.Iterator
	fail := func(err error) (iter.Iterator, colIndex, error) {
		for _, it := range opened {
			it.Close()
		}
		return nil, nil, err
	}
	// openRel opens a filtered scan of one relation — through the batch's
	// scan share when the context carries one (one physical pass feeds
	// every consumer; the I/O charge per open is unchanged), privately
	// otherwise.
	openRel := func(rel string) (iter.Iterator, error) {
		t, err := db.Table(rel)
		if err != nil {
			return nil, err
		}
		var src iter.Iterator
		if sh := ScanShareFromContext(ctx); sh != nil {
			shared, used, err := sh.open(ctx, t, io)
			if err != nil {
				return nil, err
			}
			if used {
				src = shared
			}
		}
		if src == nil {
			cur, err := t.Open(io)
			if err != nil {
				return nil, err
			}
			src = iter.FromCursor(ctx, cur)
		}
		sels := selsFor[rel]
		if len(sels) == 0 {
			return src, nil
		}
		idx := make([]int, len(sels))
		for i, s := range sels {
			idx[i] = t.Relation().ColumnIndex(s.Attr.Attr)
		}
		return iter.Filter(src, func(r storage.Row) bool {
			for i, s := range sels {
				if !s.Op.Eval(r[idx[i]], s.Value) {
					return false
				}
			}
			return true
		}), nil
	}

	// Seed with the first relation.
	current, err := openRel(q.From[0])
	if err != nil {
		return fail(err)
	}
	opened = append(opened, current)
	joined := map[string]bool{q.From[0]: true}
	cols := make(colIndex)
	rel0 := db.MustTable(q.From[0]).Relation()
	for i, c := range rel0.Columns {
		cols[schema.AttrRef{Relation: rel0.Name, Attr: c.Name}] = i
	}
	width := len(rel0.Columns)

	remaining := len(q.From) - 1
	usedJoin := make([]bool, len(q.Joins))
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		// Find a relation connected to the joined set.
		next, conds := pickNext(q, joined, usedJoin)
		if next == "" {
			// Disconnected query: cartesian-product the next unjoined relation.
			for _, r := range q.From {
				if !joined[r] {
					next = r
					break
				}
			}
		}
		build, err := openRel(next)
		if err != nil {
			return fail(err)
		}
		opened = append(opened, build)
		nrel := db.MustTable(next).Relation()
		// Extend the column index.
		for i, c := range nrel.Columns {
			cols[schema.AttrRef{Relation: next, Attr: c.Name}] = width + i
		}
		if len(conds) == 0 {
			current = iter.Cross(ctx, current, build, width, len(nrel.Columns))
		} else {
			probeIdx := make([]int, len(conds))
			buildIdx := make([]int, len(conds))
			for i, c := range conds {
				probeIdx[i] = cols[c.Left]
				// Right columns sit at cols[right] - width within the new row.
				buildIdx[i] = cols[c.Right] - width
			}
			current = iter.HashJoin(ctx, current, build, probeIdx, buildIdx, width, len(nrel.Columns))
		}
		width += len(nrel.Columns)
		joined[next] = true
		remaining--
	}
	// Residual joins (both sides already joined — cycles) act as filters.
	var residual []query.Join
	for ji, j := range q.Joins {
		if !usedJoin[ji] {
			residual = append(residual, j)
		}
	}
	if len(residual) > 0 {
		current = iter.Filter(current, func(r storage.Row) bool {
			for _, j := range residual {
				if r[cols[j.Left]].Compare(r[cols[j.Right]]) != 0 {
					return false
				}
			}
			return true
		})
	}
	return current, cols, nil
}

// pickNext selects an unjoined relation connected to the joined set by at
// least one join, marking every join between the set and that relation used
// and returning those joins oriented (left = already-joined side).
func pickNext(q *query.Query, joined map[string]bool, usedJoin []bool) (string, []query.Join) {
	var next string
	for _, j := range q.Joins {
		lj, rj := joined[j.Left.Relation], joined[j.Right.Relation]
		switch {
		case lj && !rj:
			next = j.Right.Relation
		case rj && !lj:
			next = j.Left.Relation
		default:
			continue
		}
		break
	}
	if next == "" {
		return "", nil
	}
	var conds []query.Join
	for ji, j := range q.Joins {
		if usedJoin[ji] {
			continue
		}
		switch {
		case joined[j.Left.Relation] && j.Right.Relation == next:
			conds = append(conds, j)
			usedJoin[ji] = true
		case joined[j.Right.Relation] && j.Left.Relation == next:
			conds = append(conds, query.Join{Left: j.Right, Right: j.Left})
			usedJoin[ji] = true
		}
	}
	return next, conds
}

// compareRows orders rows positionwise by each value's SQL rendering — the
// deterministic tie-break for equal-doi results. (For equal-arity rows
// this reproduces the ordering of the seed's concatenated string keys
// without materializing them.)
func compareRows(a, b storage.Row) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		sa, sb := a[i].SQL(), b[i].SQL()
		if sa != sb {
			if sa < sb {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// RankedRow is one tuple of a personalized query's answer together with the
// sub-queries (preferences) it satisfies and its degree of interest under
// the conjunction function r (Formula 10).
type RankedRow struct {
	Key storage.Row
	// Matched lists indices of the satisfied sub-queries.
	Matched []int
	// Doi is 1 − Π(1 − doi_i) over the matched sub-queries.
	Doi float64
}

// SubQueryStat instruments one sub-query of a personalized union: the
// paper's Formula 6 charges the union as the sum over sub-queries, and
// this is where each summand's actual time and I/O becomes visible.
type SubQueryStat struct {
	// Rows is the sub-query's (deduplicated) result cardinality.
	Rows int
	// BlockReads is the sub-query's simulated I/O.
	BlockReads int64
	// Elapsed is the sub-query's in-memory evaluation time.
	Elapsed time.Duration
}

// UnionResult is the outcome of a personalized (union) query evaluation.
type UnionResult struct {
	Columns []schema.AttrRef
	// Rows are ranked by decreasing doi, ties broken by key for determinism.
	Rows       []RankedRow
	BlockReads int64
	Elapsed    time.Duration
	// Subs holds per-sub-query timings aligned with the union's
	// sub-queries, for tracing and metrics.
	Subs []SubQueryStat
}

// EvalUnion evaluates the personalized query "UNION ALL of sub-queries,
// GROUP BY projection HAVING COUNT(*) >= minMatches" (Section 4.2 of the
// paper; the paper's construction uses == L, which callers get with
// minMatches == len(subs) since each sub-query's output is deduplicated
// on the projection). dois provides each sub-query's preference doi for
// ranking; it may be nil, in which case all results rank equally at 0 and
// only membership counts.
func EvalUnion(db *storage.DB, subs []*query.Query, dois []float64, minMatches int) (*UnionResult, error) {
	return EvalUnionContext(context.Background(), db, subs, dois, minMatches)
}

// EvalUnionContext is EvalUnion honoring cancellation: each sub-query polls
// the context inside its operator loops. It also hosts the fault harness's
// exec.union injection point, standing in for executor failures of a real
// engine.
func EvalUnionContext(ctx context.Context, db *storage.DB, subs []*query.Query, dois []float64, minMatches int) (*UnionResult, error) {
	return evalUnion(ctx, db, subs, dois, minMatches, 0)
}

// EvalUnionTopK is EvalUnionContext keeping only the k best-ranked rows,
// maintained in a bounded heap while groups stream out of the group table:
// the full ranked result never materializes, so a top-k request over a
// huge union costs O(groups·log k) time and O(k) result memory.
func EvalUnionTopK(ctx context.Context, db *storage.DB, subs []*query.Query, dois []float64, minMatches, k int) (*UnionResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("exec: top-k needs k > 0")
	}
	return evalUnion(ctx, db, subs, dois, minMatches, k)
}

func evalUnion(ctx context.Context, db *storage.DB, subs []*query.Query, dois []float64, minMatches, k int) (*UnionResult, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("exec: union of zero sub-queries")
	}
	if dois != nil && len(dois) != len(subs) {
		return nil, fmt.Errorf("exec: %d dois for %d sub-queries", len(dois), len(subs))
	}
	if err := fault.Inject(fault.ExecUnion); err != nil {
		return nil, fmt.Errorf("exec: union: %w", err)
	}
	if minMatches < 1 {
		minMatches = 1
	}
	start := time.Now()

	// Sub-queries are independent reads over immutable tables: evaluate
	// them concurrently (bounded by GOMAXPROCS), then merge sequentially
	// so grouping stays deterministic.
	results := make([]*Result, len(subs))
	errs := make([]error, len(subs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, sq := range subs {
		wg.Add(1)
		go func(i int, sq *query.Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dq := sq.Clone()
			dq.Distinct = true // dedup within a sub-query: HAVING counts sub-queries, not duplicates
			results[i], errs[i] = EvalContext(ctx, db, dq)
		}(i, sq)
	}
	wg.Wait()

	var io int64
	grouper := iter.NewGrouper(ctx)
	defer grouper.Close()
	subs2 := make([]SubQueryStat, len(results))
	for i, res := range results {
		if errs[i] != nil {
			// %w: the cause's class (injected fault, context death) must
			// survive for retry and degradation policies to read.
			return nil, fmt.Errorf("exec: sub-query %d: %w", i, errs[i])
		}
		io += res.BlockReads
		subs2[i] = SubQueryStat{Rows: len(res.Rows), BlockReads: res.BlockReads, Elapsed: res.Elapsed}
		for _, r := range res.Rows {
			if err := grouper.Add(r, i); err != nil {
				return nil, fmt.Errorf("exec: union group: %w", err)
			}
		}
	}
	out := &UnionResult{Columns: subs[0].Project, BlockReads: io, Subs: subs2}
	emit := func(row storage.Row, tags []int) RankedRow {
		rr := RankedRow{Key: row, Matched: append([]int(nil), tags...)}
		if dois != nil {
			ds := make([]float64, len(rr.Matched))
			for i, m := range rr.Matched {
				ds[i] = dois[m]
			}
			rr.Doi = prefs.Conjunction(ds...)
		}
		return rr
	}
	if k > 0 {
		h := &topKHeap{k: k}
		err := grouper.Each(func(row storage.Row, tags []int) error {
			if len(tags) < minMatches {
				return nil
			}
			h.offer(emit(row, tags))
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("exec: union group: %w", err)
		}
		out.Rows = h.ranked()
	} else {
		err := grouper.Each(func(row storage.Row, tags []int) error {
			if len(tags) < minMatches {
				return nil
			}
			out.Rows = append(out.Rows, emit(row, tags))
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("exec: union group: %w", err)
		}
		sort.Slice(out.Rows, func(i, j int) bool {
			return rankLess(out.Rows[i], out.Rows[j])
		})
	}
	out.Elapsed = time.Since(start)
	if reg := db.Metrics(); reg != nil {
		reg.Counter("exec_unions_total").Inc()
		reg.Counter("exec_subqueries_total").Add(int64(len(subs)))
		reg.Counter("exec_block_reads_total").Add(io)
		reg.Counter("exec_rows_returned_total").Add(int64(len(out.Rows)))
		reg.Histogram("exec_union_ms", obs.DurationBucketsMS).
			Observe(float64(out.Elapsed) / float64(time.Millisecond))
		hsub := reg.Histogram("exec_subquery_ms", obs.DurationBucketsMS)
		for _, s := range subs2 {
			hsub.Observe(float64(s.Elapsed) / float64(time.Millisecond))
		}
	}
	return out, nil
}

// rankLess orders ranked rows: higher doi first, key tie-break.
func rankLess(a, b RankedRow) bool {
	if a.Doi != b.Doi {
		return a.Doi > b.Doi
	}
	return compareRows(a.Key, b.Key) < 0
}

// topKHeap keeps the k best-ranked rows; the root is the worst kept row,
// evicted when a better candidate arrives.
type topKHeap struct {
	rows []RankedRow
	k    int
}

func (h *topKHeap) Len() int           { return len(h.rows) }
func (h *topKHeap) Less(i, j int) bool { return rankLess(h.rows[j], h.rows[i]) }
func (h *topKHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topKHeap) Push(x any)         { h.rows = append(h.rows, x.(RankedRow)) }
func (h *topKHeap) Pop() any           { r := h.rows[len(h.rows)-1]; h.rows = h.rows[:len(h.rows)-1]; return r }

func (h *topKHeap) offer(r RankedRow) {
	if len(h.rows) < h.k {
		heap.Push(h, r)
		return
	}
	if rankLess(r, h.rows[0]) {
		h.rows[0] = r
		heap.Fix(h, 0)
	}
}

// ranked drains the heap into best-first order.
func (h *topKHeap) ranked() []RankedRow {
	out := make([]RankedRow, len(h.rows))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(RankedRow)
	}
	return out
}

// RealCost converts an evaluation into the paper's "Real Query Exec. Time"
// (Figure 15): simulated block I/O at b per block plus the measured
// in-memory compute time (the part the estimator deliberately ignores).
func RealCost(blockReads int64, elapsed time.Duration, b time.Duration) time.Duration {
	return time.Duration(blockReads)*b + elapsed
}

// Format renders result rows for display, one row per line.
func Format(cols []schema.AttrRef, rows []storage.Row) string {
	s := ""
	for i, c := range cols {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	s += "\n"
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				s += ", "
			}
			s += v.String()
		}
		s += "\n"
	}
	return s
}
