// Package exec evaluates conjunctive queries and personalized union queries
// against the in-memory store, with block-granular I/O accounting.
//
// The executor deliberately mirrors the paper's cost-model assumptions
// (Section 7.1): every relation in a (sub-)query is read from disk exactly
// once via a full scan (no indexes), all intermediate results stay in
// memory, and a personalized query executes its sub-queries independently,
// so a relation shared by two sub-queries is charged twice — exactly as
// Formula 6 sums per-sub-query costs. Figure 15's "real" execution time is
// the counter's block total times b plus the measured in-memory CPU time.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"cqp/internal/fault"
	"cqp/internal/obs"
	"cqp/internal/prefs"
	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/storage"
)

// Result is the outcome of evaluating one conjunctive query.
type Result struct {
	// Columns names the projected attributes.
	Columns []schema.AttrRef
	// Rows holds the projected tuples (with duplicates unless the query is
	// DISTINCT).
	Rows []storage.Row
	// BlockReads is the simulated I/O charged to this evaluation.
	BlockReads int64
	// Elapsed is the wall-clock time of the in-memory evaluation.
	Elapsed time.Duration
}

// Eval evaluates a conjunctive SPJ query. It validates the query first.
func Eval(db *storage.DB, q *query.Query) (*Result, error) {
	return EvalContext(context.Background(), db, q)
}

// EvalContext is Eval honoring cancellation: the context is checked before
// the evaluation starts and between relation scans, so an expired deadline
// stops a multi-relation join before it reads the next heap file.
func EvalContext(ctx context.Context, db *storage.DB, q *query.Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(db.Schema()); err != nil {
		return nil, err
	}
	start := time.Now()
	var io storage.IOCounter
	rows, cols, err := evalJoinTree(ctx, db, &io, q)
	if err != nil {
		return nil, err
	}
	out := project(rows, cols, q.Project, q.Distinct)
	if len(q.OrderBy) > 0 {
		orderRows(out, q)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return &Result{
		Columns:    q.Project,
		Rows:       out,
		BlockReads: io.BlockReads,
		Elapsed:    time.Since(start),
	}, nil
}

// orderRows sorts projected rows by the query's ORDER BY keys (already
// validated to be projected attributes).
func orderRows(rows []storage.Row, q *query.Query) {
	idx := make([]int, len(q.OrderBy))
	for i, o := range q.OrderBy {
		for j, p := range q.Project {
			if p == o.Attr {
				idx[i] = j
				break
			}
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, o := range q.OrderBy {
			c := rows[a][idx[i]].Compare(rows[b][idx[i]])
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// colIndex maps attribute references to positions in an intermediate tuple.
type colIndex map[schema.AttrRef]int

// evalJoinTree scans, filters, and joins all relations of the query,
// returning wide tuples and a column index over them.
func evalJoinTree(ctx context.Context, db *storage.DB, io *storage.IOCounter, q *query.Query) ([]storage.Row, colIndex, error) {
	// Per-relation pushed-down selections.
	selsFor := make(map[string][]query.Selection)
	for _, s := range q.Selections {
		selsFor[s.Attr.Relation] = append(selsFor[s.Attr.Relation], s)
	}
	// Scan and filter each relation once.
	filtered := make(map[string][]storage.Row, len(q.From))
	for _, rel := range q.From {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		t, err := db.Table(rel)
		if err != nil {
			return nil, nil, err
		}
		sels := selsFor[rel]
		var rows []storage.Row
		err = t.Scan(io, func(r storage.Row) bool {
			for _, s := range sels {
				i := t.Relation().ColumnIndex(s.Attr.Attr)
				if !s.Op.Eval(r[i], s.Value) {
					return true
				}
			}
			rows = append(rows, r)
			return true
		})
		if err != nil {
			return nil, nil, err
		}
		filtered[rel] = rows
	}

	// Seed the join with the first relation.
	joined := map[string]bool{q.From[0]: true}
	cols := make(colIndex)
	rel0 := db.MustTable(q.From[0]).Relation()
	for i, c := range rel0.Columns {
		cols[schema.AttrRef{Relation: rel0.Name, Attr: c.Name}] = i
	}
	current := filtered[q.From[0]]
	width := len(rel0.Columns)

	remaining := len(q.From) - 1
	usedJoin := make([]bool, len(q.Joins))
	for remaining > 0 {
		// Find a relation connected to the joined set.
		next, conds := pickNext(q, joined, usedJoin)
		if next == "" {
			// Disconnected query: cartesian-product the next unjoined relation.
			for _, r := range q.From {
				if !joined[r] {
					next = r
					break
				}
			}
		}
		nrel := db.MustTable(next).Relation()
		// Extend the column index.
		for i, c := range nrel.Columns {
			cols[schema.AttrRef{Relation: next, Attr: c.Name}] = width + i
		}
		current = hashJoin(current, filtered[next], cols, conds, width, len(nrel.Columns))
		width += len(nrel.Columns)
		joined[next] = true
		remaining--
	}
	// Residual joins (both sides already joined — cycles) act as filters.
	for ji, j := range q.Joins {
		if usedJoin[ji] {
			continue
		}
		li, ri := cols[j.Left], cols[j.Right]
		var kept []storage.Row
		for _, r := range current {
			if query.OpEq.Eval(r[li], r[ri]) {
				kept = append(kept, r)
			}
		}
		current = kept
	}
	return current, cols, nil
}

// pickNext selects an unjoined relation connected to the joined set by at
// least one join, marking every join between the set and that relation used
// and returning those joins oriented (left = already-joined side).
func pickNext(q *query.Query, joined map[string]bool, usedJoin []bool) (string, []query.Join) {
	var next string
	for _, j := range q.Joins {
		lj, rj := joined[j.Left.Relation], joined[j.Right.Relation]
		switch {
		case lj && !rj:
			next = j.Right.Relation
		case rj && !lj:
			next = j.Left.Relation
		default:
			continue
		}
		break
	}
	if next == "" {
		return "", nil
	}
	var conds []query.Join
	for ji, j := range q.Joins {
		if usedJoin[ji] {
			continue
		}
		switch {
		case joined[j.Left.Relation] && j.Right.Relation == next:
			conds = append(conds, j)
			usedJoin[ji] = true
		case joined[j.Right.Relation] && j.Left.Relation == next:
			conds = append(conds, query.Join{Left: j.Right, Right: j.Left})
			usedJoin[ji] = true
		}
	}
	return next, conds
}

// hashJoin joins the current wide tuples with a new relation's rows on the
// given equi-join conditions (left attrs resolve through cols; right attrs
// belong to the new relation, whose columns start at offset width).
func hashJoin(current []storage.Row, newRows []storage.Row, cols colIndex, conds []query.Join, width, newWidth int) []storage.Row {
	if len(conds) == 0 {
		// Cartesian product.
		out := make([]storage.Row, 0, len(current)*len(newRows))
		for _, l := range current {
			for _, r := range newRows {
				out = append(out, concatRows(l, r, width, newWidth))
			}
		}
		return out
	}
	rightIdx := make([]int, len(conds))
	leftIdx := make([]int, len(conds))
	for i, c := range conds {
		leftIdx[i] = cols[c.Left]
		// Right columns sit at cols[right] - width within the new row.
		rightIdx[i] = cols[c.Right] - width
	}
	// Build on the new relation.
	build := make(map[uint64][]storage.Row, len(newRows))
	for _, r := range newRows {
		build[hashKeyAt(r, rightIdx)] = append(build[hashKeyAt(r, rightIdx)], r)
	}
	var out []storage.Row
	for _, l := range current {
		h := hashKeyIdx(l, leftIdx)
		for _, r := range build[h] {
			if equalOn(l, r, leftIdx, rightIdx) {
				out = append(out, concatRows(l, r, width, newWidth))
			}
		}
	}
	return out
}

func concatRows(l, r storage.Row, width, newWidth int) storage.Row {
	row := make(storage.Row, width+newWidth)
	copy(row, l[:width])
	copy(row[width:], r)
	return row
}

func hashKeyAt(r storage.Row, idx []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, i := range idx {
		h = (h ^ r[i].Hash()) * 1099511628211
	}
	return h
}

func hashKeyIdx(r storage.Row, idx []int) uint64 { return hashKeyAt(r, idx) }

func equalOn(l, r storage.Row, li, ri []int) bool {
	for k := range li {
		if !query.OpEq.Eval(l[li[k]], r[ri[k]]) {
			return false
		}
	}
	return true
}

// project extracts the projection attributes, optionally deduplicating.
func project(rows []storage.Row, cols colIndex, proj []schema.AttrRef, distinct bool) []storage.Row {
	idx := make([]int, len(proj))
	for i, p := range proj {
		idx[i] = cols[p]
	}
	out := make([]storage.Row, 0, len(rows))
	var seen map[string]bool
	if distinct {
		seen = make(map[string]bool, len(rows))
	}
	for _, r := range rows {
		t := make(storage.Row, len(idx))
		for i, j := range idx {
			t[i] = r[j]
		}
		if distinct {
			k := rowKey(t)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out = append(out, t)
	}
	return out
}

// rowKey builds a canonical string key for grouping.
func rowKey(r storage.Row) string {
	s := ""
	for _, v := range r {
		s += v.SQL() + "\x00"
	}
	return s
}

// RankedRow is one tuple of a personalized query's answer together with the
// sub-queries (preferences) it satisfies and its degree of interest under
// the conjunction function r (Formula 10).
type RankedRow struct {
	Key storage.Row
	// Matched lists indices of the satisfied sub-queries.
	Matched []int
	// Doi is 1 − Π(1 − doi_i) over the matched sub-queries.
	Doi float64
}

// SubQueryStat instruments one sub-query of a personalized union: the
// paper's Formula 6 charges the union as the sum over sub-queries, and
// this is where each summand's actual time and I/O becomes visible.
type SubQueryStat struct {
	// Rows is the sub-query's (deduplicated) result cardinality.
	Rows int
	// BlockReads is the sub-query's simulated I/O.
	BlockReads int64
	// Elapsed is the sub-query's in-memory evaluation time.
	Elapsed time.Duration
}

// UnionResult is the outcome of a personalized (union) query evaluation.
type UnionResult struct {
	Columns []schema.AttrRef
	// Rows are ranked by decreasing doi, ties broken by key for determinism.
	Rows       []RankedRow
	BlockReads int64
	Elapsed    time.Duration
	// Subs holds per-sub-query timings aligned with the union's
	// sub-queries, for tracing and metrics.
	Subs []SubQueryStat
}

// EvalUnion evaluates the personalized query "UNION ALL of sub-queries,
// GROUP BY projection HAVING COUNT(*) >= minMatches" (Section 4.2 of the
// paper; the paper's construction uses == L, which callers get with
// minMatches == len(subs) since each sub-query's output is deduplicated
// on the projection). dois provides each sub-query's preference doi for
// ranking; it may be nil, in which case all results rank equally at 0 and
// only membership counts.
func EvalUnion(db *storage.DB, subs []*query.Query, dois []float64, minMatches int) (*UnionResult, error) {
	return EvalUnionContext(context.Background(), db, subs, dois, minMatches)
}

// EvalUnionContext is EvalUnion honoring cancellation: each sub-query checks
// the context before it starts and between its relation scans. It also hosts
// the fault harness's exec.union injection point, standing in for executor
// failures (spilled hash tables, cancelled cursors) of a real engine.
func EvalUnionContext(ctx context.Context, db *storage.DB, subs []*query.Query, dois []float64, minMatches int) (*UnionResult, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("exec: union of zero sub-queries")
	}
	if dois != nil && len(dois) != len(subs) {
		return nil, fmt.Errorf("exec: %d dois for %d sub-queries", len(dois), len(subs))
	}
	if err := fault.Inject(fault.ExecUnion); err != nil {
		return nil, fmt.Errorf("exec: union: %w", err)
	}
	if minMatches < 1 {
		minMatches = 1
	}
	start := time.Now()

	// Sub-queries are independent reads over immutable tables: evaluate
	// them concurrently (bounded by GOMAXPROCS), then merge sequentially
	// so grouping stays deterministic.
	results := make([]*Result, len(subs))
	errs := make([]error, len(subs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, sq := range subs {
		wg.Add(1)
		go func(i int, sq *query.Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dq := sq.Clone()
			dq.Distinct = true // dedup within a sub-query: HAVING counts sub-queries, not duplicates
			results[i], errs[i] = EvalContext(ctx, db, dq)
		}(i, sq)
	}
	wg.Wait()

	var io int64
	type group struct {
		key     storage.Row
		matched []int
	}
	subs2 := make([]SubQueryStat, len(results))
	groups := make(map[string]*group)
	for i, res := range results {
		if errs[i] != nil {
			// %w: the cause's class (injected fault, context death) must
			// survive for retry and degradation policies to read.
			return nil, fmt.Errorf("exec: sub-query %d: %w", i, errs[i])
		}
		io += res.BlockReads
		subs2[i] = SubQueryStat{Rows: len(res.Rows), BlockReads: res.BlockReads, Elapsed: res.Elapsed}
		for _, r := range res.Rows {
			k := rowKey(r)
			g, ok := groups[k]
			if !ok {
				g = &group{key: r}
				groups[k] = g
			}
			g.matched = append(g.matched, i)
		}
	}
	out := &UnionResult{Columns: subs[0].Project, BlockReads: io, Subs: subs2}
	for _, g := range groups {
		if len(g.matched) < minMatches {
			continue
		}
		doi := 0.0
		if dois != nil {
			ds := make([]float64, len(g.matched))
			for i, m := range g.matched {
				ds[i] = dois[m]
			}
			doi = prefs.Conjunction(ds...)
		}
		out.Rows = append(out.Rows, RankedRow{Key: g.key, Matched: g.matched, Doi: doi})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Doi != out.Rows[j].Doi {
			return out.Rows[i].Doi > out.Rows[j].Doi
		}
		return rowKey(out.Rows[i].Key) < rowKey(out.Rows[j].Key)
	})
	out.Elapsed = time.Since(start)
	if reg := db.Metrics(); reg != nil {
		reg.Counter("exec_unions_total").Inc()
		reg.Counter("exec_subqueries_total").Add(int64(len(subs)))
		reg.Counter("exec_block_reads_total").Add(io)
		reg.Counter("exec_rows_returned_total").Add(int64(len(out.Rows)))
		reg.Histogram("exec_union_ms", obs.DurationBucketsMS).
			Observe(float64(out.Elapsed) / float64(time.Millisecond))
		hsub := reg.Histogram("exec_subquery_ms", obs.DurationBucketsMS)
		for _, s := range subs2 {
			hsub.Observe(float64(s.Elapsed) / float64(time.Millisecond))
		}
	}
	return out, nil
}

// RealCost converts an evaluation into the paper's "Real Query Exec. Time"
// (Figure 15): simulated block I/O at b per block plus the measured
// in-memory compute time (the part the estimator deliberately ignores).
func RealCost(blockReads int64, elapsed time.Duration, b time.Duration) time.Duration {
	return time.Duration(blockReads)*b + elapsed
}

// Format renders result rows for display, one row per line.
func Format(cols []schema.AttrRef, rows []storage.Row) string {
	s := ""
	for i, c := range cols {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	s += "\n"
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				s += ", "
			}
			s += v.String()
		}
		s += "\n"
	}
	return s
}
