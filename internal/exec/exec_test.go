package exec

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"cqp/internal/query"
	"cqp/internal/sqlparse"
	"cqp/internal/storage"
	"cqp/internal/testutil"
)

// titles extracts the first projected column as sorted strings.
func titles(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].String()
	}
	sort.Strings(out)
	return out
}

func evalSQL(t *testing.T, db *storage.DB, sql string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(db.Schema(), sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleTableScan(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title FROM MOVIE")
	if len(res.Rows) != 6 {
		t.Errorf("got %d rows", len(res.Rows))
	}
	if res.BlockReads != db.MustTable("MOVIE").Blocks() {
		t.Errorf("io = %d, want %d", res.BlockReads, db.MustTable("MOVIE").Blocks())
	}
}

func TestSelectionPushdown(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title FROM MOVIE WHERE year >= 1980")
	got := titles(res.Rows)
	want := []string{"Everyone Says I Love You", "The Shining"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestTwoWayJoin(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, `SELECT title FROM MOVIE, DIRECTOR
		WHERE MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'`)
	got := titles(res.Rows)
	want := []string{"Bananas", "Everyone Says I Love You", "Manhattan"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("rows = %v, want %v", got, want)
	}
	wantIO := db.MustTable("MOVIE").Blocks() + db.MustTable("DIRECTOR").Blocks()
	if res.BlockReads != wantIO {
		t.Errorf("io = %d, want %d (each relation scanned once)", res.BlockReads, wantIO)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, `SELECT title FROM MOVIE, DIRECTOR, GENRE
		WHERE MOVIE.did = DIRECTOR.did AND MOVIE.mid = GENRE.mid
		AND DIRECTOR.name = 'W. Allen' AND GENRE.genre = 'comedy'`)
	got := titles(res.Rows)
	want := []string{"Bananas", "Everyone Says I Love You", "Manhattan"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestDuplicatesAndDistinct(t *testing.T) {
	db := testutil.MovieDB(0)
	// Manhattan has two genres, so the plain join yields it twice.
	res := evalSQL(t, db, `SELECT title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND MOVIE.year = 1979`)
	if len(res.Rows) != 2 {
		t.Errorf("plain join rows = %d, want 2 (duplicate titles)", len(res.Rows))
	}
	res = evalSQL(t, db, `SELECT DISTINCT title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND MOVIE.year = 1979`)
	if len(res.Rows) != 1 {
		t.Errorf("distinct rows = %d, want 1", len(res.Rows))
	}
}

func TestEmptyResult(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title FROM MOVIE WHERE year > 3000")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestDisconnectedCartesian(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title, name FROM MOVIE, DIRECTOR")
	if len(res.Rows) != 18 {
		t.Errorf("cartesian rows = %d, want 18", len(res.Rows))
	}
}

func TestEvalValidates(t *testing.T) {
	db := testutil.MovieDB(0)
	q, _ := query.New([]string{"NOPE"}, "NOPE.x")
	if _, err := Eval(db, q); err == nil {
		t.Error("invalid query must fail")
	}
}

// TestJoinAgainstNestedLoopOracle cross-checks the hash-join pipeline with a
// naive nested-loop evaluation on a larger generated workload.
func TestJoinAgainstNestedLoopOracle(t *testing.T) {
	db := testutil.MovieDB(0)
	q := sqlparse.MustParse(db.Schema(), `SELECT title, genre FROM MOVIE, GENRE
		WHERE MOVIE.mid = GENRE.mid AND MOVIE.year >= 1960`)
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	// Naive oracle.
	var want []string
	mt, gt := db.MustTable("MOVIE"), db.MustTable("GENRE")
	mrows, err := storage.AllRows(mt)
	if err != nil {
		t.Fatal(err)
	}
	grows, err := storage.AllRows(gt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mrows {
		if m[2].AsInt() < 1960 {
			continue
		}
		for _, g := range grows {
			if m[0].Equal(g[0]) {
				want = append(want, m[1].String()+"/"+g[1].String())
			}
		}
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].String()+"/"+r[1].String())
	}
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("hash join disagrees with nested loop:\n%v\n%v", got, want)
	}
}

func TestEvalUnionIntersection(t *testing.T) {
	db := testutil.MovieDB(0)
	// The paper's Section 4.2 example: Q1 = W. Allen movies, Q2 = musicals.
	q1 := sqlparse.MustParse(db.Schema(), `SELECT title FROM MOVIE, DIRECTOR
		WHERE MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'`)
	q2 := sqlparse.MustParse(db.Schema(), `SELECT title FROM MOVIE, GENRE
		WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = 'musical'`)
	res, err := EvalUnion(db, []*query.Query{q1, q2}, []float64{0.8, 0.45}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key[0].String() != "Everyone Says I Love You" {
		t.Fatalf("HAVING COUNT(*)=2 must yield the one musical W. Allen movie, got %v", res.Rows)
	}
	// doi = 1 - (1-0.8)(1-0.45) = 0.89
	if math.Abs(res.Rows[0].Doi-0.89) > 1e-9 {
		t.Errorf("doi = %g, want 0.89", res.Rows[0].Doi)
	}
	if len(res.Rows[0].Matched) != 2 {
		t.Errorf("matched = %v", res.Rows[0].Matched)
	}
	// I/O is the sum of sub-query scans (Formula 6's execution counterpart).
	wantIO := db.MustTable("MOVIE").Blocks()*2 + db.MustTable("DIRECTOR").Blocks() + db.MustTable("GENRE").Blocks()
	if res.BlockReads != wantIO {
		t.Errorf("io = %d, want %d", res.BlockReads, wantIO)
	}
}

func TestEvalUnionAnyMatchRanking(t *testing.T) {
	db := testutil.MovieDB(0)
	q1 := sqlparse.MustParse(db.Schema(), `SELECT title FROM MOVIE, DIRECTOR
		WHERE MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'`)
	q2 := sqlparse.MustParse(db.Schema(), `SELECT title FROM MOVIE, GENRE
		WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = 'musical'`)
	res, err := EvalUnion(db, []*query.Query{q1, q2}, []float64{0.8, 0.45}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("any-match should yield 3 movies, got %d", len(res.Rows))
	}
	// The movie matching both preferences ranks first.
	if res.Rows[0].Key[0].String() != "Everyone Says I Love You" {
		t.Errorf("top row = %v", res.Rows[0])
	}
	if res.Rows[1].Doi != 0.8 || res.Rows[2].Doi != 0.8 {
		t.Errorf("singles should carry doi 0.8: %v", res.Rows[1:])
	}
	// Ties are broken deterministically by key.
	if res.Rows[1].Key[0].String() > res.Rows[2].Key[0].String() {
		t.Error("tie-break ordering violated")
	}
}

func TestEvalUnionDuplicateSafety(t *testing.T) {
	db := testutil.MovieDB(0)
	// Manhattan appears under two genres: a plain UNION ALL would count it
	// twice within one sub-query; per-sub-query dedup must prevent that.
	q := sqlparse.MustParse(db.Schema(), `SELECT title FROM MOVIE, GENRE
		WHERE MOVIE.mid = GENRE.mid AND MOVIE.year = 1979`)
	res, err := EvalUnion(db, []*query.Query{q, q.Clone()}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Matched) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalUnionErrors(t *testing.T) {
	db := testutil.MovieDB(0)
	if _, err := EvalUnion(db, nil, nil, 1); err == nil {
		t.Error("empty union must fail")
	}
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	if _, err := EvalUnion(db, []*query.Query{q}, []float64{0.1, 0.2}, 1); err == nil {
		t.Error("doi arity mismatch must fail")
	}
	bad, _ := query.New([]string{"NOPE"}, "NOPE.x")
	if _, err := EvalUnion(db, []*query.Query{bad}, nil, 1); err == nil {
		t.Error("invalid sub-query must fail")
	}
	// minMatches < 1 clamps to 1.
	res, err := EvalUnion(db, []*query.Query{q}, nil, 0)
	if err != nil || len(res.Rows) != 6 {
		t.Errorf("clamped minMatches: %v, %v", res, err)
	}
}

func TestRealCost(t *testing.T) {
	got := RealCost(100, 2*time.Millisecond, time.Millisecond)
	if got != 102*time.Millisecond {
		t.Errorf("RealCost = %v", got)
	}
}

func TestFormat(t *testing.T) {
	db := testutil.MovieDB(0)
	res := evalSQL(t, db, "SELECT title FROM MOVIE WHERE year = 1979")
	s := Format(res.Columns, res.Rows)
	if !strings.Contains(s, "MOVIE.title") || !strings.Contains(s, "Manhattan") {
		t.Errorf("Format = %q", s)
	}
}

// TestJoinOrderInvariance: shuffling FROM and join clause order never
// changes the result multiset (the join-tree builder must be order-proof).
func TestJoinOrderInvariance(t *testing.T) {
	db := testutil.MovieDB(0)
	base := sqlparse.MustParse(db.Schema(), `SELECT title, genre, name
		FROM MOVIE, GENRE, DIRECTOR
		WHERE MOVIE.mid = GENRE.mid AND MOVIE.did = DIRECTOR.did AND MOVIE.year >= 1960`)
	want, err := Eval(db, base)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(rows []storage.Row) string {
		keys := make([]string, len(rows))
		for i, r := range rows {
			keys[i] = r[0].String() + "/" + r[1].String() + "/" + r[2].String()
		}
		sort.Strings(keys)
		return strings.Join(keys, "|")
	}
	wantKey := canon(want.Rows)

	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		q := base.Clone()
		rng.Shuffle(len(q.From), func(i, j int) { q.From[i], q.From[j] = q.From[j], q.From[i] })
		rng.Shuffle(len(q.Joins), func(i, j int) { q.Joins[i], q.Joins[j] = q.Joins[j], q.Joins[i] })
		// Also randomly flip join orientations.
		for i := range q.Joins {
			if rng.Intn(2) == 0 {
				q.Joins[i].Left, q.Joins[i].Right = q.Joins[i].Right, q.Joins[i].Left
			}
		}
		got, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if canon(got.Rows) != wantKey {
			t.Fatalf("trial %d: shuffled query changed the answer:\n%s", trial, q.SQL())
		}
		// I/O is order-independent too: every relation scanned once.
		if got.BlockReads != want.BlockReads {
			t.Fatalf("trial %d: io %d != %d", trial, got.BlockReads, want.BlockReads)
		}
	}
}

// TestEvalUnionConcurrencyDeterminism: the concurrent sub-query evaluation
// must produce identical ranked output across repeated runs.
func TestEvalUnionConcurrencyDeterminism(t *testing.T) {
	db := testutil.MovieDB(0)
	subs := make([]*query.Query, 0, 8)
	dois := make([]float64, 0, 8)
	genres := []string{"comedy", "drama", "horror", "thriller", "musical", "comedy", "horror", "drama"}
	for i, g := range genres {
		subs = append(subs, sqlparse.MustParse(db.Schema(),
			"SELECT title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = '"+g+"'"))
		dois = append(dois, 0.1*float64(i+1))
	}
	first, err := EvalUnion(db, subs, dois, 1)
	if err != nil {
		t.Fatal(err)
	}
	render := func(u *UnionResult) string {
		s := ""
		for _, r := range u.Rows {
			s += r.Key[0].String() + "@"
		}
		return s
	}
	want := render(first)
	for i := 0; i < 20; i++ {
		got, err := EvalUnion(db, subs, dois, 1)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != want {
			t.Fatalf("run %d: nondeterministic union output", i)
		}
	}
}
