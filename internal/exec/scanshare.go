package exec

import (
	"context"
	"sync"
	"sync/atomic"

	"cqp/internal/iter"
	"cqp/internal/storage"
)

// DefaultShareBytes caps how much relation data one ScanShare will
// materialize per relation (64 MiB). Relations estimated bigger than this
// are never shared — every consumer opens its own streaming scan, as
// without sharing — so a batch over a huge table cannot OOM the daemon.
const DefaultShareBytes = 64 << 20

// ScanShare runs at most one physical pass per base relation and feeds the
// materialized rows to every scan opened under it — the shared-scan half
// of batch execution. The batch items (and the sub-queries within each
// item) all execute against one immutable statistics generation (the
// storage contract forbids mutation racing open cursors, and a Refresh
// swaps estimators without touching table data), so no MVCC machinery is
// needed: a row slice read once is correct for every consumer.
//
// I/O accounting is unchanged by sharing. The paper's cost model charges
// each (sub-)query the full block count of every relation it opens
// (Formula 6 sums per-sub-query costs), so the first opener charges its
// counter via the normal Backend.Open — which also fires the storage.scan
// fault point and the per-table scan metrics for the one physical pass —
// and every later consumer charges the same logical block count directly.
// Per-item BlockReads are therefore byte-identical to unshared execution;
// only the physical row reads collapse.
//
// Failure is per-item, like sequential execution: the opener whose
// physical scan fails gets that error itself, and the relation's entry is
// poisoned so later consumers fall back to private scans (drawing their
// own fault-point decisions) rather than inheriting a failure that was
// never theirs.
type ScanShare struct {
	maxBytes int64

	mu   sync.Mutex
	ents map[string]*shareEntry

	physical atomic.Int64 // relations actually scanned once
	shared   atomic.Int64 // scan opens answered from a materialized pass
}

// shareEntry is one relation's shared pass: done closes when the first
// opener finished materializing (rows set) or failed (failed set).
type shareEntry struct {
	done   chan struct{}
	rows   []storage.Row
	failed bool
}

// NewScanShare returns a share for one batch. maxBytes ≤ 0 selects
// DefaultShareBytes.
func NewScanShare(maxBytes int64) *ScanShare {
	if maxBytes <= 0 {
		maxBytes = DefaultShareBytes
	}
	return &ScanShare{maxBytes: maxBytes, ents: make(map[string]*shareEntry)}
}

// Stats reports how many relations were physically scanned and how many
// scan opens were answered from a shared pass.
func (s *ScanShare) Stats() (physical, shared int64) {
	return s.physical.Load(), s.shared.Load()
}

type scanShareKey struct{}

// WithScanShare threads a batch's scan share through the context, exactly
// like iter.WithBudget threads the spill budget: sharing is an operational
// property of the request (the batch), not of any one evaluation call.
func WithScanShare(ctx context.Context, s *ScanShare) context.Context {
	return context.WithValue(ctx, scanShareKey{}, s)
}

// ScanShareFromContext returns the share installed by WithScanShare, or
// nil when scans are private.
func ScanShareFromContext(ctx context.Context) *ScanShare {
	s, _ := ctx.Value(scanShareKey{}).(*ScanShare)
	return s
}

// open returns a row stream over the relation through the share. used
// reports whether the share handled the open; when false (relation too
// big, or a previous opener's scan failed) the caller opens its own
// private scan. A non-nil error is the caller's own failure — its physical
// pass died — never an adopted one.
func (s *ScanShare) open(ctx context.Context, t storage.Backend, io *storage.IOCounter) (it iter.Iterator, used bool, err error) {
	if t.Blocks()*int64(t.BlockSize()) > s.maxBytes {
		return nil, false, nil
	}
	name := t.Relation().Name
	s.mu.Lock()
	e, ok := s.ents[name]
	if !ok {
		e = &shareEntry{done: make(chan struct{})}
		s.ents[name] = e
		s.mu.Unlock()
		rows, err := materializeScan(ctx, t, io)
		if err != nil {
			e.failed = true
			close(e.done)
			return nil, true, err
		}
		e.rows = rows
		close(e.done)
		s.physical.Add(1)
		return iter.FromRowsContext(ctx, rows), true, nil
	}
	s.mu.Unlock()
	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
	if e.failed {
		return nil, false, nil
	}
	io.Add(t.Blocks())
	s.shared.Add(1)
	return iter.FromRowsContext(ctx, e.rows), true, nil
}

// materializeScan runs the one physical pass: a normal metered Open (block
// charge, fault point, scan metrics) drained into cloned rows (cursor rows
// are only valid until the next Next).
func materializeScan(ctx context.Context, t storage.Backend, io *storage.IOCounter) ([]storage.Row, error) {
	cur, err := t.Open(io)
	if err != nil {
		return nil, err
	}
	rows := make([]storage.Row, 0, t.RowCount())
	for n := 0; ; n++ {
		if n%64 == 0 {
			if err := ctx.Err(); err != nil {
				cur.Close()
				return nil, err
			}
		}
		r, ok, err := cur.Next()
		if err != nil {
			cur.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, r.Clone())
	}
	return rows, cur.Close()
}
