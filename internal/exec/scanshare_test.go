package exec

import (
	"context"
	"fmt"
	"testing"

	"cqp/internal/sqlparse"
	"cqp/internal/testutil"
)

// TestScanShareOnePhysicalPass: repeated evaluations under one share scan
// each relation once, later opens are answered from the materialized pass,
// and rows and charged I/O match unshared evaluation exactly.
func TestScanShareOnePhysicalPass(t *testing.T) {
	db := testutil.MovieDB(256)
	sql := "SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did"
	q := sqlparse.MustParse(db.Schema(), sql)
	plain, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}

	share := NewScanShare(0)
	ctx := WithScanShare(context.Background(), share)
	for i := 0; i < 3; i++ {
		res, err := EvalContext(ctx, db, q)
		if err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
		if got, want := fmt.Sprint(titles(res.Rows)), fmt.Sprint(titles(plain.Rows)); got != want {
			t.Fatalf("eval %d: shared rows differ:\nshared: %s\nplain:  %s", i, got, want)
		}
		if res.BlockReads != plain.BlockReads {
			t.Fatalf("eval %d: charged I/O differs: shared %d, plain %d", i, res.BlockReads, plain.BlockReads)
		}
	}
	physical, shared := share.Stats()
	if physical != 2 {
		t.Errorf("physical passes = %d, want 2 (MOVIE, DIRECTOR)", physical)
	}
	if shared != 4 {
		t.Errorf("shared opens = %d, want 4 (two relations x two repeat evals)", shared)
	}
}

// TestScanShareOversizedFallsBack: a relation above the byte cap is never
// materialized — every consumer runs its own private scan and answers stay
// correct.
func TestScanShareOversizedFallsBack(t *testing.T) {
	db := testutil.MovieDB(256)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	plain, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}

	share := NewScanShare(1) // one byte: everything is oversized
	ctx := WithScanShare(context.Background(), share)
	for i := 0; i < 2; i++ {
		res, err := EvalContext(ctx, db, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(plain.Rows) || res.BlockReads != plain.BlockReads {
			t.Fatalf("oversized fallback diverged: %d rows / %d blocks, want %d / %d",
				len(res.Rows), res.BlockReads, len(plain.Rows), plain.BlockReads)
		}
	}
	if physical, shared := share.Stats(); physical != 0 || shared != 0 {
		t.Errorf("oversized relation hit the share: physical=%d shared=%d", physical, shared)
	}
}

// TestScanShareCancellation: a context cancelled mid-batch surfaces
// context.Canceled from evaluation under a share rather than hanging on
// the entry's done channel.
func TestScanShareCancellation(t *testing.T) {
	db := testutil.MovieDB(256)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	share := NewScanShare(0)
	ctx, cancel := context.WithCancel(WithScanShare(context.Background(), share))
	cancel()
	if _, err := EvalContext(ctx, db, q); err == nil {
		t.Fatal("cancelled shared evaluation returned nil error")
	}
}
