package blockstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"cqp/internal/storage"
	"cqp/internal/value"
)

// The value codec is sort-preserving: for two values a, b of the same kind
// (the only comparison a typed column ever performs), bytes.Compare of
// their encodings orders exactly like value.Compare, and NULL orders before
// every non-NULL value. That property is what lets a future ordered backend
// (range scans, primary-key indexes, LSM compaction) reuse this file format
// unchanged: keys can be compared without decoding. Encodings are
// self-delimiting, so a row decodes without schema information — spill
// files of wide intermediate tuples (internal/iter) reuse the codec too.
//
// Layout per value, tag byte first:
//
//	0x01 NULL    —
//	0x02 INT     8 bytes big-endian of uint64(v) with the sign bit flipped
//	0x03 FLOAT   8 bytes big-endian IEEE-754, negative values bit-inverted,
//	             positive values with the sign bit set
//	0x04 VARCHAR bytes with 0x00 escaped as 0x00 0xFF, terminated 0x00 0x00
//	0x05 BOOLEAN 1 byte (0x00 false, 0x01 true)
//
// INT and FLOAT use distinct tags, so the cross-kind numeric ordering of
// value.Compare (which compares INT against FLOAT numerically) is NOT
// preserved byte-wise; within a typed column this never arises because
// Insert coerces values to the declared column kind.
const (
	tagNull   = 0x01
	tagInt    = 0x02
	tagFloat  = 0x03
	tagString = 0x04
	tagBool   = 0x05
)

// AppendValue appends the sort-preserving encoding of v to dst.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(dst, tagNull)
	case value.KindInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.AsInt())^(1<<63))
		return append(append(dst, tagInt), b[:]...)
	case value.KindFloat:
		bits := math.Float64bits(v.AsFloat())
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(append(dst, tagFloat), b[:]...)
	case value.KindString:
		dst = append(dst, tagString)
		s := v.AsStr()
		for i := 0; i < len(s); i++ {
			if s[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, s[i])
			}
		}
		return append(dst, 0x00, 0x00)
	case value.KindBool:
		if v.AsBool() {
			return append(dst, tagBool, 0x01)
		}
		return append(dst, tagBool, 0x00)
	default:
		panic(fmt.Sprintf("blockstore: unencodable kind %v", v.Kind()))
	}
}

// DecodeValue decodes one value from b, returning the remainder.
func DecodeValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Value{}, nil, fmt.Errorf("blockstore: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNull:
		return value.Null(), b, nil
	case tagInt:
		if len(b) < 8 {
			return value.Value{}, nil, fmt.Errorf("blockstore: truncated INT")
		}
		u := binary.BigEndian.Uint64(b[:8]) ^ (1 << 63)
		return value.Int(int64(u)), b[8:], nil
	case tagFloat:
		if len(b) < 8 {
			return value.Value{}, nil, fmt.Errorf("blockstore: truncated FLOAT")
		}
		bits := binary.BigEndian.Uint64(b[:8])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return value.Float(math.Float64frombits(bits)), b[8:], nil
	case tagString:
		var s []byte
		for i := 0; i < len(b); i++ {
			if b[i] != 0x00 {
				s = append(s, b[i])
				continue
			}
			if i+1 >= len(b) {
				break // truncated escape
			}
			switch b[i+1] {
			case 0x00:
				return value.Str(string(s)), b[i+2:], nil
			case 0xFF:
				s = append(s, 0x00)
				i++
			default:
				return value.Value{}, nil, fmt.Errorf("blockstore: bad string escape 0x%02x", b[i+1])
			}
		}
		return value.Value{}, nil, fmt.Errorf("blockstore: unterminated VARCHAR")
	case tagBool:
		if len(b) < 1 {
			return value.Value{}, nil, fmt.Errorf("blockstore: truncated BOOLEAN")
		}
		return value.Bool(b[0] != 0), b[1:], nil
	default:
		return value.Value{}, nil, fmt.Errorf("blockstore: unknown value tag 0x%02x", tag)
	}
}

// AppendRow appends the encoding of a row: a uvarint arity followed by
// each value's encoding. Rows of any width round-trip without schema
// information.
func AppendRow(dst []byte, r storage.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow decodes one row from b, returning the remainder.
func DecodeRow(b []byte) (storage.Row, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("blockstore: bad row arity")
	}
	b = b[sz:]
	row := make(storage.Row, n)
	var err error
	for i := range row {
		row[i], b, err = DecodeValue(b)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, b, nil
}
