// Package blockstore is the persistent table backend: heap tables stored
// as files of fixed-size CRC-framed pages, serving databases far bigger
// than RAM through batched sequential scans with reusable cursors.
//
// It implements storage.Backend, so the executor, the catalog builder and
// the serving daemon run unchanged on top of it. Two accounting planes
// coexist deliberately:
//
//   - The paper's cost model stays honest: every table advances the same
//     storage.BlockTally as the in-memory backend, scans charge that
//     logical block count to the query's IOCounter up front, and the
//     catalog therefore reports identical statistics for identical data —
//     a personalization run returns byte-identical answers on either
//     backend.
//   - Physical truth is tracked separately: actual page reads, bytes, and
//     CRC failures are counted per store (Stats, Observe) so operators see
//     what the disk really did, including early-terminated scans that
//     touched fewer pages than the model charged.
//
// File format, per table ("<relation>.tbl", lower-cased): a sequence of
// pageSize-byte pages, each [crc32c u32][rows u16][used u16][payload],
// where the CRC covers the rows/used header fields and the payload. Rows
// are encoded with the sort-preserving codec of encoding.go. The last
// (tail) page may be partially filled; it is rewritten in place as rows
// append. A MANIFEST file (JSON, written atomically on Sync/Close) records
// per-table geometry; when it is missing or stale the store rebuilds state
// by scanning pages and fails loudly on CRC damage.
//
// Mutation (Insert, ReadCSV) must not race with open cursors or other
// mutations; concurrent scans are safe — the serving daemon ingests first,
// then serves read-only, exactly like the in-memory backend.
package blockstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"cqp/internal/fault"
	"cqp/internal/obs"
	"cqp/internal/schema"
	"cqp/internal/storage"
	"cqp/internal/value"
)

const (
	pageHeaderSize = 8
	// readBatchPages is how many pages one physical read pulls in: scans
	// are sequential, so batching turns per-page syscalls into a handful
	// of large reads.
	readBatchPages = 8
	manifestName   = "MANIFEST"
	manifestVer    = 1
)

// ErrCorrupt marks unrecoverable page or manifest damage. The store
// refuses to guess around it: serving wrong rows silently would poison
// every cost metric and cached answer downstream.
var ErrCorrupt = errors.New("blockstore: corrupt data")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats are physical-plane counters for one store.
type Stats struct {
	PageReads    int64 // physical page reads served to cursors
	BytesRead    int64 // bytes pulled from table files
	PagesWritten int64
	CRCErrors    int64
}

// Store is a directory of persistent tables sharing one manifest.
type Store struct {
	dir       string
	schema    *schema.Schema
	blockSize int
	tables    map[string]*Table

	pageReads    atomic.Int64
	bytesRead    atomic.Int64
	pagesWritten atomic.Int64
	crcErrors    atomic.Int64

	// Optional registry mirrors of the atomic counters (nil until Observe).
	mPageReads, mBytesRead, mPagesWritten, mCRCErrors *obs.Counter
}

type manifest struct {
	Version   int                      `json:"version"`
	BlockSize int                      `json:"block_size"`
	Tables    map[string]tableManifest `json:"tables"`
}

type tableManifest struct {
	Rows     int   `json:"rows"`
	Blocks   int64 `json:"blocks"`
	Used     int   `json:"used"`
	Sealed   int64 `json:"sealed_pages"`
	TailRows int   `json:"tail_rows"`
}

// Open opens (creating as needed) a block store for the schema under dir.
// blockSize ≤ 0 selects storage.DefaultBlockSize; an existing store's
// manifest must agree with a non-zero blockSize. Tables with rows on disk
// are recovered from the manifest, or by a full page scan when the
// manifest is missing or stale (a crash between appends and Sync).
func Open(dir string, s *schema.Schema, blockSize int) (*Store, error) {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	if blockSize < 512 || blockSize > 65528 {
		return nil, fmt.Errorf("blockstore: block size %d out of [512, 65528]", blockSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	st := &Store{dir: dir, schema: s, blockSize: blockSize, tables: make(map[string]*Table)}
	var man manifest
	haveMan := false
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &man); err != nil {
			return nil, fmt.Errorf("blockstore: manifest: %w: %v", ErrCorrupt, err)
		}
		if man.Version != manifestVer {
			return nil, fmt.Errorf("blockstore: manifest version %d unsupported", man.Version)
		}
		if man.BlockSize != blockSize {
			return nil, fmt.Errorf("blockstore: store has block size %d, asked for %d", man.BlockSize, blockSize)
		}
		haveMan = true
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("blockstore: manifest: %w", err)
	}
	for _, rel := range s.Relations() {
		t, err := st.openTable(rel, man.Tables[rel.Name], haveMan)
		if err != nil {
			st.Close()
			return nil, err
		}
		st.tables[rel.Name] = t
	}
	return st, nil
}

// DB wraps the store's tables in a storage.DB over the schema.
func (st *Store) DB() (*storage.DB, error) {
	return storage.NewDBWith(st.schema, st.blockSize, func(rel *schema.Relation) (storage.Backend, error) {
		t, ok := st.tables[rel.Name]
		if !ok {
			return nil, fmt.Errorf("blockstore: no table %s", rel.Name)
		}
		return t, nil
	})
}

// Table returns the persistent table for the relation.
func (st *Store) Table(name string) (*Table, error) {
	t, ok := st.tables[name]
	if !ok {
		return nil, fmt.Errorf("blockstore: no table %s", name)
	}
	return t, nil
}

// Empty reports whether the store holds no rows at all (a fresh directory
// awaiting ingest).
func (st *Store) Empty() bool {
	for _, t := range st.tables {
		if t.rows > 0 {
			return false
		}
	}
	return true
}

// Rows sums row counts over all tables.
func (st *Store) Rows() int {
	n := 0
	for _, t := range st.tables {
		n += t.rows
	}
	return n
}

// Stats snapshots the physical-plane counters.
func (st *Store) Stats() Stats {
	return Stats{
		PageReads:    st.pageReads.Load(),
		BytesRead:    st.bytesRead.Load(),
		PagesWritten: st.pagesWritten.Load(),
		CRCErrors:    st.crcErrors.Load(),
	}
}

// Observe mirrors the physical counters into the registry as
// blockstore_page_reads_total, blockstore_bytes_read_total,
// blockstore_pages_written_total and blockstore_crc_errors_total.
func (st *Store) Observe(reg *obs.Registry) {
	if reg == nil {
		st.mPageReads, st.mBytesRead, st.mPagesWritten, st.mCRCErrors = nil, nil, nil, nil
		return
	}
	st.mPageReads = reg.Counter("blockstore_page_reads_total")
	st.mBytesRead = reg.Counter("blockstore_bytes_read_total")
	st.mPagesWritten = reg.Counter("blockstore_pages_written_total")
	st.mCRCErrors = reg.Counter("blockstore_crc_errors_total")
}

func (st *Store) countRead(pages int64, bytes int64) {
	st.pageReads.Add(pages)
	st.bytesRead.Add(bytes)
	st.mPageReads.Add(pages)
	st.mBytesRead.Add(bytes)
}

// Sync flushes every table's tail page, fsyncs the files, and rewrites the
// manifest atomically (temp + fsync + rename). After Sync returns, a crash
// loses nothing.
func (st *Store) Sync() error {
	for _, t := range st.tables {
		if err := t.flushTail(); err != nil {
			return err
		}
		if err := t.f.Sync(); err != nil {
			return fmt.Errorf("blockstore: sync %s: %w", t.rel.Name, err)
		}
	}
	return st.writeManifest()
}

// Close syncs and closes every table file.
func (st *Store) Close() error {
	var first error
	// Sync only tables that opened successfully (Close also runs on a
	// failed Open).
	if len(st.tables) > 0 {
		if err := st.Sync(); err != nil {
			first = err
		}
	}
	for _, t := range st.tables {
		if err := t.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (st *Store) writeManifest() error {
	man := manifest{Version: manifestVer, BlockSize: st.blockSize, Tables: make(map[string]tableManifest, len(st.tables))}
	for name, t := range st.tables {
		man.Tables[name] = tableManifest{
			Rows:     t.rows,
			Blocks:   t.tally.Blocks,
			Used:     t.tally.Used,
			Sealed:   t.sealed,
			TailRows: len(t.tailRows),
		}
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(st.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("blockstore: manifest: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("blockstore: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("blockstore: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("blockstore: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, manifestName)); err != nil {
		return fmt.Errorf("blockstore: manifest: %w", err)
	}
	return nil
}

// Table is one relation's persistent heap file. It implements
// storage.Backend.
type Table struct {
	store *Store
	rel   *schema.Relation
	f     *os.File
	path  string

	rows   int
	tally  storage.BlockTally
	sealed int64 // full pages on disk

	tailRows []storage.Row // rows of the unsealed tail page
	tailBuf  []byte        // their encoded payload
	scratch  []byte
	pageBuf  []byte

	cursors sync.Pool

	mScans, mBlockReads, mRowsScanned *obs.Counter
}

func (st *Store) openTable(rel *schema.Relation, tm tableManifest, haveMan bool) (*Table, error) {
	path := filepath.Join(st.dir, strings.ToLower(rel.Name)+".tbl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	t := &Table{store: st, rel: rel, f: f, path: path}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	size := fi.Size()
	switch {
	case size == 0 && (!haveMan || tm.Rows == 0):
		// Fresh table.
		t.tally = storage.BlockTally{BlockSize: st.blockSize}
	case haveMan && size >= (tm.Sealed+tailPages(tm.TailRows))*int64(st.blockSize):
		if err := t.restoreFromManifest(tm); err != nil {
			f.Close()
			return nil, err
		}
	default:
		// Manifest missing or behind the file (crash between appends and
		// Sync): rebuild from the pages themselves.
		if err := t.rebuild(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	t.cursors.New = func() any { return &cursor{} }
	return t, nil
}

func tailPages(tailRows int) int64 {
	if tailRows > 0 {
		return 1
	}
	return 0
}

func (t *Table) restoreFromManifest(tm tableManifest) error {
	t.rows = tm.Rows
	t.tally = storage.BlockTally{BlockSize: t.store.blockSize, Blocks: tm.Blocks, Used: tm.Used}
	t.sealed = tm.Sealed
	if tm.TailRows == 0 {
		return nil
	}
	rows, buf, err := t.readPage(t.sealed, nil)
	if err != nil {
		return fmt.Errorf("blockstore: %s tail page: %w", t.rel.Name, err)
	}
	if len(rows) != tm.TailRows {
		return fmt.Errorf("blockstore: %s tail page has %d rows, manifest says %d: %w",
			t.rel.Name, len(rows), tm.TailRows, ErrCorrupt)
	}
	t.tailRows = rows
	t.tailBuf = append(t.tailBuf[:0], buf...)
	return nil
}

// rebuild recovers table state by scanning every page — the no-manifest
// path. The last page becomes the in-memory tail so appends can continue.
func (t *Table) rebuild(size int64) error {
	ps := int64(t.store.blockSize)
	if size%ps != 0 {
		return fmt.Errorf("blockstore: %s: file size %d not page-aligned: %w", t.rel.Name, size, ErrCorrupt)
	}
	pages := size / ps
	t.tally = storage.BlockTally{BlockSize: t.store.blockSize}
	for p := int64(0); p < pages; p++ {
		rows, buf, err := t.readPage(p, nil)
		if err != nil {
			return fmt.Errorf("blockstore: %s page %d: %w", t.rel.Name, p, err)
		}
		for _, r := range rows {
			t.tally.Add(r.Width())
		}
		t.rows += len(rows)
		if p == pages-1 {
			t.tailRows = rows
			t.tailBuf = append([]byte(nil), buf...)
		}
	}
	if pages > 0 {
		t.sealed = pages - 1
	}
	return nil
}

// readPage reads and verifies one page, returning its decoded rows and raw
// payload. Used by recovery and by ReadCSV rollback, not the scan path.
func (t *Table) readPage(page int64, buf []byte) ([]storage.Row, []byte, error) {
	ps := t.store.blockSize
	if cap(buf) < ps {
		buf = make([]byte, ps)
	}
	buf = buf[:ps]
	if _, err := t.f.ReadAt(buf, page*int64(ps)); err != nil {
		return nil, nil, err
	}
	t.store.countRead(1, int64(ps))
	payload, nrows, err := t.verifyPage(buf)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]storage.Row, 0, nrows)
	rest := payload
	for i := 0; i < nrows; i++ {
		var r storage.Row
		r, rest, err = DecodeRow(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rows = append(rows, r)
	}
	return rows, payload, nil
}

// verifyPage checks the CRC frame and returns the payload and row count.
func (t *Table) verifyPage(page []byte) ([]byte, int, error) {
	nrows := int(binary.LittleEndian.Uint16(page[4:6]))
	used := int(binary.LittleEndian.Uint16(page[6:8]))
	if used > len(page)-pageHeaderSize {
		t.store.crcErrors.Add(1)
		t.store.mCRCErrors.Inc()
		return nil, 0, fmt.Errorf("%w: page claims %d payload bytes", ErrCorrupt, used)
	}
	want := binary.LittleEndian.Uint32(page[0:4])
	got := crc32.Checksum(page[4:pageHeaderSize+used], castagnoli)
	if want != got {
		t.store.crcErrors.Add(1)
		t.store.mCRCErrors.Inc()
		return nil, 0, fmt.Errorf("%w: page crc mismatch", ErrCorrupt)
	}
	return page[pageHeaderSize : pageHeaderSize+used], nrows, nil
}

func (t *Table) payloadCap() int { return t.store.blockSize - pageHeaderSize }

// Relation returns the table's relation definition.
func (t *Table) Relation() *schema.Relation { return t.rel }

// RowCount returns the number of stored tuples.
func (t *Table) RowCount() int { return t.rows }

// Blocks returns the table's logical block count under the paper's model
// (identical to the in-memory backend for the same data).
func (t *Table) Blocks() int64 { return t.tally.Blocks }

// BlockSize returns the block (and physical page) size in bytes.
func (t *Table) BlockSize() int { return t.store.blockSize }

// Insert validates, coerces and appends one tuple, sealing the tail page
// to disk when it fills.
func (t *Table) Insert(r storage.Row) error {
	row, w, err := storage.PrepareRow(t.rel, r, t.store.blockSize)
	if err != nil {
		return err
	}
	enc := AppendRow(t.scratch[:0], row)
	t.scratch = enc[:0]
	if len(enc) > t.payloadCap() {
		return fmt.Errorf("blockstore: %s: encoded row of %d bytes exceeds page payload %d",
			t.rel.Name, len(enc), t.payloadCap())
	}
	if len(t.tailBuf)+len(enc) > t.payloadCap() {
		if err := t.sealTail(); err != nil {
			return err
		}
	}
	t.tally.Add(w)
	t.rows++
	t.tailBuf = append(t.tailBuf, enc...)
	t.tailRows = append(t.tailRows, row)
	return nil
}

// MustInsert is Insert panicking on error; for generators and tests.
func (t *Table) MustInsert(vals ...value.Value) {
	if err := t.Insert(storage.Row(vals)); err != nil {
		panic(err)
	}
}

// sealTail writes the full tail page to disk and starts a fresh tail.
func (t *Table) sealTail() error {
	if err := t.writePage(t.sealed); err != nil {
		return err
	}
	t.sealed++
	// Fresh slices, not [:0]: open cursors may still reference the old
	// tail snapshot.
	t.tailRows = nil
	t.tailBuf = t.tailBuf[:0]
	return nil
}

// flushTail persists the partial tail page in place (it is rewritten again
// as more rows arrive).
func (t *Table) flushTail() error {
	if len(t.tailRows) == 0 {
		return nil
	}
	return t.writePage(t.sealed)
}

func (t *Table) writePage(page int64) error {
	ps := t.store.blockSize
	if cap(t.pageBuf) < ps {
		t.pageBuf = make([]byte, ps)
	}
	buf := t.pageBuf[:ps]
	for i := pageHeaderSize + len(t.tailBuf); i < ps; i++ {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(t.tailRows)))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(t.tailBuf)))
	copy(buf[pageHeaderSize:], t.tailBuf)
	crc := crc32.Checksum(buf[4:pageHeaderSize+len(t.tailBuf)], castagnoli)
	binary.LittleEndian.PutUint32(buf[0:4], crc)
	if _, err := t.f.WriteAt(buf, page*int64(ps)); err != nil {
		return fmt.Errorf("blockstore: write %s page %d: %w", t.rel.Name, page, err)
	}
	t.store.pagesWritten.Add(1)
	t.store.mPagesWritten.Inc()
	return nil
}

// Open starts a query-path scan: the storage.scan fault point fires, the
// logical block count is charged to io up front (the paper's model: a scan
// pays for the whole heap file), and per-table scan metrics record. The
// cursor itself reads physical pages in batches and is recycled across
// scans.
func (t *Table) Open(io *storage.IOCounter) (storage.Cursor, error) {
	if err := fault.Inject(fault.StorageScan); err != nil {
		return nil, fmt.Errorf("blockstore: scan %s: %w", t.rel.Name, err)
	}
	io.Add(t.tally.Blocks)
	t.mScans.Inc()
	t.mBlockReads.Add(t.tally.Blocks)
	return t.newCursor(true), nil
}

// OpenRaw starts a maintenance scan: no storage.scan fault point, no
// logical charge, no scan metrics. Physical reads (and the
// blockstore.read fault point) still apply — the disk is real either way.
func (t *Table) OpenRaw() (storage.Cursor, error) {
	return t.newCursor(false), nil
}

func (t *Table) newCursor(metered bool) *cursor {
	c := t.cursors.Get().(*cursor)
	c.reset(t, metered)
	return c
}

// Scan is a convenience full scan.
func (t *Table) Scan(io *storage.IOCounter, fn func(storage.Row) bool) error {
	return storage.ScanBackend(t, io, fn)
}

// ReadCSV bulk-loads CSV data. The load is atomic: on error the file is
// truncated back to its pre-call sealed pages and the in-memory tail is
// restored, so no partial rows (or their block accounting) survive.
func (t *Table) ReadCSV(r io.Reader) (int, error) {
	snap := t.snapshot()
	n, err := storage.ReadCSVInto(t, r)
	if err != nil {
		t.restoreSnapshot(snap)
		return 0, err
	}
	return n, nil
}

type tableSnapshot struct {
	rows     int
	tally    storage.BlockTally
	sealed   int64
	tailRows []storage.Row
	tailBuf  []byte
}

func (t *Table) snapshot() tableSnapshot {
	return tableSnapshot{
		rows:     t.rows,
		tally:    t.tally,
		sealed:   t.sealed,
		tailRows: append([]storage.Row(nil), t.tailRows...),
		tailBuf:  append([]byte(nil), t.tailBuf...),
	}
}

func (t *Table) restoreSnapshot(s tableSnapshot) {
	t.rows, t.tally, t.sealed = s.rows, s.tally, s.sealed
	t.tailRows, t.tailBuf = s.tailRows, s.tailBuf
	// Drop pages written past the snapshot; harmless if none were.
	_ = t.f.Truncate(s.sealed * int64(t.store.blockSize))
}

// WriteCSV dumps the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error { return storage.WriteCSVTo(t, w) }

// SetMetrics attaches per-table scan instruments.
func (t *Table) SetMetrics(scans, blockReads, rowsScanned *obs.Counter) {
	t.mScans, t.mBlockReads, t.mRowsScanned = scans, blockReads, rowsScanned
}

// Close flushes the tail page and the store manifest. The shared file
// handle stays open until Store.Close — a DB built over this store may
// close tables in any order while others still serve.
func (t *Table) Close() error {
	if err := t.flushTail(); err != nil {
		return err
	}
	if err := t.f.Sync(); err != nil {
		return fmt.Errorf("blockstore: sync %s: %w", t.rel.Name, err)
	}
	return t.store.writeManifest()
}

// cursor is a batched sequential reader over a table's pages, recycled
// through the table's pool ("iterator reuse": a hot serving loop scanning
// the same table allocates no per-scan read buffers after warm-up).
type cursor struct {
	t       *Table
	metered bool

	sealed int64         // snapshot of sealed pages at open
	tail   []storage.Row // snapshot of the tail
	page   int64         // next page to read into the batch buffer

	buf      []byte // batch read buffer (readBatchPages pages)
	bufPages int    // valid pages in buf
	bufIdx   int    // next page within buf

	payload  []byte // remaining payload of the current page
	rowsLeft int
	tailIdx  int
	scanned  int64
	done     bool
}

func (c *cursor) reset(t *Table, metered bool) {
	c.t = t
	c.metered = metered
	c.sealed = t.sealed
	c.tail = t.tailRows
	c.page = 0
	c.bufPages, c.bufIdx = 0, 0
	c.payload = nil
	c.rowsLeft = 0
	c.tailIdx = 0
	c.scanned = 0
	c.done = false
}

// Next returns the next row. Decoded rows are freshly allocated, so the
// caller may retain them.
func (c *cursor) Next() (storage.Row, bool, error) {
	for {
		if c.done {
			return nil, false, nil
		}
		if c.rowsLeft > 0 {
			row, rest, err := DecodeRow(c.payload)
			if err != nil {
				c.done = true
				return nil, false, fmt.Errorf("blockstore: %s: %w", c.t.rel.Name, err)
			}
			c.payload = rest
			c.rowsLeft--
			c.scanned++
			return row, true, nil
		}
		if c.bufIdx < c.bufPages {
			ps := c.t.store.blockSize
			pageBytes := c.buf[c.bufIdx*ps : (c.bufIdx+1)*ps]
			c.bufIdx++
			payload, nrows, err := c.t.verifyPage(pageBytes)
			if err != nil {
				c.done = true
				return nil, false, fmt.Errorf("blockstore: %s: %w", c.t.rel.Name, err)
			}
			c.payload, c.rowsLeft = payload, nrows
			continue
		}
		if c.page < c.sealed {
			if err := c.refill(); err != nil {
				c.done = true
				return nil, false, err
			}
			continue
		}
		// Sealed pages exhausted: serve the tail snapshot.
		if c.tailIdx < len(c.tail) {
			row := c.tail[c.tailIdx]
			c.tailIdx++
			c.scanned++
			return row, true, nil
		}
		c.done = true
		return nil, false, nil
	}
}

// refill performs one batched physical read of up to readBatchPages sealed
// pages. The blockstore.read fault point fires here — one decision per
// physical read, like a real device error.
func (c *cursor) refill() error {
	if err := fault.Inject(fault.BlockstoreRead); err != nil {
		return fmt.Errorf("blockstore: read %s: %w", c.t.rel.Name, err)
	}
	ps := c.t.store.blockSize
	n := c.sealed - c.page
	if n > readBatchPages {
		n = readBatchPages
	}
	want := int(n) * ps
	if cap(c.buf) < want {
		c.buf = make([]byte, readBatchPages*ps)
	}
	if _, err := c.t.f.ReadAt(c.buf[:want], c.page*int64(ps)); err != nil {
		return fmt.Errorf("blockstore: read %s page %d: %w", c.t.rel.Name, c.page, err)
	}
	c.t.store.countRead(n, int64(want))
	c.page += n
	c.bufPages, c.bufIdx = int(n), 0
	return nil
}

// Close records scan metrics and recycles the cursor into the table pool.
func (c *cursor) Close() error {
	if c.t == nil {
		return nil
	}
	if c.metered {
		c.t.mRowsScanned.Add(c.scanned)
	}
	t := c.t
	c.t = nil
	c.tail = nil
	c.payload = nil
	t.cursors.Put(c)
	return nil
}
