package blockstore

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cqp/internal/storage"
	"cqp/internal/value"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null(),
		value.Int(0), value.Int(1), value.Int(-1),
		value.Int(math.MinInt64), value.Int(math.MaxInt64),
		value.Float(0), value.Float(-0.0), value.Float(3.25), value.Float(-1e300),
		value.Float(math.Inf(1)), value.Float(math.Inf(-1)),
		value.Str(""), value.Str("plain"), value.Str("with\x00nul\x00bytes"),
		value.Str("trailing\x00"), value.Str(string([]byte{0x00, 0xFF, 0x00})),
		value.Bool(true), value.Bool(false),
	}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		got, rest, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", v.SQL(), err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %s left %d bytes", v.SQL(), len(rest))
		}
		if got.Compare(v) != 0 || got.Kind() != v.Kind() {
			t.Fatalf("round trip %s -> %s", v.SQL(), got.SQL())
		}
	}
}

// TestEncodingPreservesOrder is the property the codec exists for:
// bytes.Compare on same-kind encodings must order exactly like
// value.Compare.
func TestEncodingPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256)) // includes 0x00 and 0xFF
		}
		return string(b)
	}
	groups := map[string]func() value.Value{
		"int":    func() value.Value { return value.Int(rng.Int63() - rng.Int63()) },
		"float":  func() value.Value { return value.Float((rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))) },
		"string": func() value.Value { return value.Str(randStr()) },
		"bool":   func() value.Value { return value.Bool(rng.Intn(2) == 0) },
	}
	for name, gen := range groups {
		for i := 0; i < 2000; i++ {
			a, b := gen(), gen()
			ea, eb := AppendValue(nil, a), AppendValue(nil, b)
			want := a.Compare(b)
			got := bytes.Compare(ea, eb)
			if sign(got) != sign(want) {
				t.Fatalf("%s: order broken: %s vs %s: value.Compare=%d bytes.Compare=%d",
					name, a.SQL(), b.SQL(), want, got)
			}
		}
		// NULL sorts before every non-NULL value of the group.
		null := AppendValue(nil, value.Null())
		if v := gen(); bytes.Compare(null, AppendValue(nil, v)) >= 0 {
			t.Fatalf("%s: NULL does not sort first against %s", name, v.SQL())
		}
	}
}

// Strings that are prefixes of each other must still order correctly
// despite the escape/terminator scheme.
func TestStringPrefixOrder(t *testing.T) {
	pairs := [][2]string{
		{"a", "ab"},
		{"a\x00", "a\x00b"},
		{"a", "a\x00"},
		{"", "\x00"},
	}
	for _, p := range pairs {
		ea := AppendValue(nil, value.Str(p[0]))
		eb := AppendValue(nil, value.Str(p[1]))
		if bytes.Compare(ea, eb) >= 0 {
			t.Fatalf("%q must encode before %q", p[0], p[1])
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	rows := []storage.Row{
		{},
		{value.Int(1)},
		{value.Int(42), value.Str("x\x00y"), value.Float(-2.5), value.Bool(true), value.Null()},
	}
	var buf []byte
	for _, r := range rows {
		buf = AppendRow(buf, r)
	}
	rest := buf
	for _, want := range rows {
		var got storage.Row
		var err error
		got, rest, err = DecodeRow(rest)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("arity %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Compare(want[i]) != 0 {
				t.Fatalf("col %d: %s != %s", i, got[i].SQL(), want[i].SQL())
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := AppendRow(nil, storage.Row{value.Int(7), value.Str("hello"), value.Float(1.5)})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeRow(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
