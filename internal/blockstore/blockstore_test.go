package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqp/internal/fault"
	"cqp/internal/schema"
	"cqp/internal/storage"
	"cqp/internal/value"
)

func testSchema() *schema.Schema {
	s := schema.New()
	s.MustAddRelation("ITEM", "id",
		schema.Column{Name: "id", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindString},
		schema.Column{Name: "score", Type: value.KindFloat})
	return s
}

func mustOpen(t *testing.T, dir string, blockSize int) *Store {
	t.Helper()
	st, err := Open(dir, testSchema(), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func fill(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(storage.Row{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("item-%05d", i)),
			value.Float(float64(i) / 3),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func collect(t *testing.T, tbl *Table) []storage.Row {
	t.Helper()
	var rows []storage.Row
	if err := storage.ScanRaw(tbl, func(r storage.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func checkRows(t *testing.T, rows []storage.Row, n int) {
	t.Helper()
	if len(rows) != n {
		t.Fatalf("got %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d: id %d out of order", i, r[0].AsInt())
		}
		if want := fmt.Sprintf("item-%05d", i); r[1].AsStr() != want {
			t.Fatalf("row %d: name %q, want %q", i, r[1].AsStr(), want)
		}
	}
}

// Insert, scan, reopen, scan again: rows and logical geometry must survive
// a clean close (the many-page path: 512-byte pages force lots of seals).
func TestPersistAndReopen(t *testing.T) {
	dir := t.TempDir()
	const n = 500
	st := mustOpen(t, dir, 512)
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, n)
	checkRows(t, collect(t, tbl), n)
	blocks, rowCount := tbl.Blocks(), tbl.RowCount()
	if blocks == 0 {
		t.Fatal("no logical blocks tallied")
	}
	if tbl.sealed == 0 {
		t.Fatal("expected sealed pages with a 512-byte page size")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, 512)
	defer st2.Close()
	tbl2, _ := st2.Table("ITEM")
	if tbl2.RowCount() != rowCount || tbl2.Blocks() != blocks {
		t.Fatalf("reopen: rows %d blocks %d, want %d/%d",
			tbl2.RowCount(), tbl2.Blocks(), rowCount, blocks)
	}
	checkRows(t, collect(t, tbl2), n)
}

// Appends after reopen must continue the same file and stay ordered.
func TestReopenAppend(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 100)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, 512)
	tbl2, _ := st2.Table("ITEM")
	for i := 100; i < 200; i++ {
		if err := tbl2.Insert(storage.Row{
			value.Int(int64(i)), value.Str(fmt.Sprintf("item-%05d", i)), value.Float(float64(i) / 3),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3 := mustOpen(t, dir, 512)
	defer st3.Close()
	tbl3, _ := st3.Table("ITEM")
	checkRows(t, collect(t, tbl3), 200)
}

// The logical block count must be identical to the in-memory backend for
// the same data — that is what keeps cost estimates and therefore
// personalized answers byte-identical across backends.
func TestLogicalBlocksMatchMemBackend(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, storage.DefaultBlockSize)
	defer st.Close()
	disk, _ := st.Table("ITEM")

	memDB := storage.NewDB(testSchema(), storage.DefaultBlockSize)
	mem := memDB.MustTable("ITEM")

	for i := 0; i < 1000; i++ {
		row := storage.Row{value.Int(int64(i)), value.Str(fmt.Sprintf("item-%05d", i)), value.Float(float64(i))}
		if err := disk.Insert(row); err != nil {
			t.Fatal(err)
		}
		if err := mem.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if disk.Blocks() != mem.Blocks() {
		t.Fatalf("disk %d logical blocks, mem %d", disk.Blocks(), mem.Blocks())
	}

	var dio, mio storage.IOCounter
	if err := disk.Scan(&dio, func(storage.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := mem.Scan(&mio, func(storage.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if dio.BlockReads != mio.BlockReads {
		t.Fatalf("disk charged %d block reads, mem %d", dio.BlockReads, mio.BlockReads)
	}
}

// A crash before Sync leaves no manifest (or a stale one); the store must
// rebuild every table from its pages.
func TestRecoveryWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 300)
	// Flush pages but then drop the manifest, simulating a crash after
	// data writes and before the manifest rename.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, 512)
	defer st2.Close()
	tbl2, _ := st2.Table("ITEM")
	if tbl2.RowCount() != 300 {
		t.Fatalf("recovered %d rows, want 300", tbl2.RowCount())
	}
	checkRows(t, collect(t, tbl2), 300)

	// Geometry must match a fresh in-memory load of the same rows.
	memDB := storage.NewDB(testSchema(), 512)
	mem := memDB.MustTable("ITEM")
	for _, r := range collect(t, tbl2) {
		if err := mem.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if tbl2.Blocks() != mem.Blocks() {
		t.Fatalf("recovered %d logical blocks, mem says %d", tbl2.Blocks(), mem.Blocks())
	}
}

// Flipping a byte inside a sealed page must surface as ErrCorrupt, not as
// wrong rows.
func TestCorruptPageDetected(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 300)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "item.tbl")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a payload byte in the second page.
	if _, err := f.WriteAt([]byte{0xAA}, 512+64); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery-by-scan sees it...
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testSchema(), 512); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rebuild over damage: err = %v, want ErrCorrupt", err)
	}
}

// Corruption in the middle of a query scan must error out of the cursor.
func TestCorruptPageFailsScan(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 300)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Damage the CRC of page 1 behind the open store's back.
	f, err := os.OpenFile(filepath.Join(dir, "item.tbl"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var crc [4]byte
	if _, err := f.ReadAt(crc[:], 512); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(crc[:], binary.LittleEndian.Uint32(crc[:])^1)
	if _, err := f.WriteAt(crc[:], 512); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = storage.ScanRaw(tbl, func(storage.Row) bool { return true })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan over damage: err = %v, want ErrCorrupt", err)
	}
	if st.Stats().CRCErrors == 0 {
		t.Fatal("CRC error not counted")
	}
}

// A failed CSV load must roll the table back to its pre-load state, on
// disk as well as in memory.
func TestReadCSVRollback(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	defer st.Close()
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 50)
	blocks, sealed := tbl.Blocks(), tbl.sealed

	var csv strings.Builder
	csv.WriteString("id,name,score\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&csv, "%d,bulk-%d,1.5\n", 1000+i, i)
	}
	csv.WriteString("not-an-int,boom,2.5\n")
	if _, err := tbl.ReadCSV(strings.NewReader(csv.String())); err == nil {
		t.Fatal("bad CSV loaded without error")
	}
	if tbl.RowCount() != 50 || tbl.Blocks() != blocks || tbl.sealed != sealed {
		t.Fatalf("rollback left rows=%d blocks=%d sealed=%d", tbl.RowCount(), tbl.Blocks(), tbl.sealed)
	}
	checkRows(t, collect(t, tbl), 50)

	// And a good load still works afterwards.
	if n, err := tbl.ReadCSV(strings.NewReader("id,name,score\n50,item-00050,1\n")); err != nil || n != 1 {
		t.Fatalf("clean load after rollback: n=%d err=%v", n, err)
	}
	if tbl.RowCount() != 51 {
		t.Fatalf("rows = %d, want 51", tbl.RowCount())
	}
}

// The blockstore.read fault point fires on physical reads: a metered scan
// must fail, and disarming must restore service (transient classification).
func TestBlockstoreReadFault(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	defer st.Close()
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 300)

	plan, err := fault.Parse("blockstore.read:err", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()

	var io storage.IOCounter
	scanErr := tbl.Scan(&io, func(storage.Row) bool { return true })
	if !errors.Is(scanErr, fault.ErrInjected) {
		t.Fatalf("scan under fault: err = %v, want ErrInjected", scanErr)
	}
	// The logical charge already happened at Open — the paper's model
	// charges a scan up front regardless of physical outcome.
	if io.BlockReads != tbl.Blocks() {
		t.Fatalf("charged %d, want %d", io.BlockReads, tbl.Blocks())
	}

	fault.Disarm()
	if err := tbl.Scan(&io, func(storage.Row) bool { return true }); err != nil {
		t.Fatalf("scan after disarm: %v", err)
	}
}

// storage.scan fires on metered opens of the disk backend too, and OpenRaw
// (maintenance scans) is exempt from it.
func TestStorageScanFaultAndRawExemption(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 512)
	defer st.Close()
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 50)

	plan, err := fault.Parse("storage.scan:err", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()

	if _, err := tbl.Open(&storage.IOCounter{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("metered open under storage.scan fault: err = %v", err)
	}
	if err := storage.ScanRaw(tbl, func(storage.Row) bool { return true }); err != nil {
		t.Fatalf("raw scan must bypass storage.scan fault, got %v", err)
	}
}

// Cursors snapshot the tail at open: sealing the tail mid-scan (an append
// racing is disallowed, but seal reuse of buffers must not corrupt an
// already-open cursor's view).
func TestCursorTailSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 4096)
	defer st.Close()
	tbl, _ := st.Table("ITEM")
	fill(t, tbl, 10)

	cur, err := tbl.OpenRaw()
	if err != nil {
		t.Fatal(err)
	}
	// Force enough inserts to seal the page the cursor's tail points at.
	fill2 := 500
	for i := 0; i < fill2; i++ {
		tbl.MustInsert(value.Int(int64(100+i)), value.Str("later"), value.Float(1))
	}
	var got int
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got++
	}
	cur.Close()
	if got != 10 {
		t.Fatalf("snapshot cursor saw %d rows, want the 10 present at open", got)
	}
}

// Oversized rows and block-size mismatches fail loudly.
func TestOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testSchema(), 100); err == nil {
		t.Fatal("tiny block size accepted")
	}
	st := mustOpen(t, dir, 512)
	tbl, _ := st.Table("ITEM")
	big := strings.Repeat("x", 2000)
	if err := tbl.Insert(storage.Row{value.Int(1), value.Str(big), value.Float(0)}); err == nil {
		t.Fatal("row larger than a page accepted")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testSchema(), 1024); err == nil {
		t.Fatal("block-size mismatch with manifest accepted")
	}
}
