// Package value implements the typed scalar values stored in relations and
// referenced by queries and preference conditions.
//
// Values are small immutable variants over int64, float64, string and bool,
// with a Null kind for absent data. They provide total ordering within a
// kind (and across numeric kinds), hashing for use in hash joins and
// grouping, and SQL-literal rendering for query construction.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a type name (as used in schema definitions) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("value: unknown type name %q", s)
	}
}

// Value is an immutable typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if the value is not an INT.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the value as a float64. INT values are widened.
// It panics for non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
	}
}

// AsStr returns the string payload. It panics if the value is not a string.
func (v Value) AsStr() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsStr on %s", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics if the value is not a bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.b
}

// numericKinds reports whether both values are numeric (INT or FLOAT).
func numericKinds(a, b Value) bool {
	return (a.kind == KindInt || a.kind == KindFloat) &&
		(b.kind == KindInt || b.kind == KindFloat)
}

// Comparable reports whether a and b can be ordered against each other:
// same kind, or both numeric. NULL compares only with NULL.
func Comparable(a, b Value) bool {
	return a.kind == b.kind || numericKinds(a, b)
}

// Compare orders v against o: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything. Numeric kinds compare by numeric value.
// Comparing incomparable kinds orders by kind tag so that Compare remains a
// total order usable for sorting heterogeneous slices.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKinds(v, o) {
		a, b := v.AsFloat(), o.AsFloat()
		// NaN breaks <'s trichotomy; order it deterministically before every
		// non-NaN number so Compare stays a total order.
		an, bn := math.IsNaN(a), math.IsNaN(b)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports whether v and o are equal under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Less reports whether v orders strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Hash returns a 64-bit hash suitable for hash joins and grouping.
// Values that are Equal hash identically (INT and FLOAT representing the
// same number share a hash).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.kind {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt, KindFloat:
		buf[0] = 1
		f := v.AsFloat()
		bits := math.Float64bits(f)
		if f == 0 { // normalize -0.0 and +0.0
			bits = 0
		}
		if math.IsNaN(f) { // normalize NaN payloads: all NaNs are Equal
			bits = math.Float64bits(math.NaN())
		}
		for j := 0; j < 8; j++ {
			buf[1+j] = byte(bits >> (8 * j))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 2
		h.Write(buf[:1])
		h.Write([]byte(v.s))
	case KindBool:
		buf[0] = 3
		if v.b {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

// Width returns the value's storage footprint in bytes under the storage
// layer's block model: 8 bytes for numerics and booleans (slot-aligned),
// string length plus a 4-byte length header for strings, 1 byte for NULL.
func (v Value) Width() int {
	switch v.kind {
	case KindString:
		return len(v.s) + 4
	case KindNull:
		return 1
	default:
		return 8
	}
}

// String renders the value for display (unquoted strings).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal (strings quoted and escaped).
func (v Value) SQL() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// ParseLiteral parses a SQL literal into a Value: quoted strings, integers,
// floats, booleans (TRUE/FALSE), and NULL.
func ParseLiteral(s string) (Value, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return Value{}, fmt.Errorf("value: empty literal")
	}
	if len(t) >= 2 && t[0] == '\'' && t[len(t)-1] == '\'' {
		return Str(strings.ReplaceAll(t[1:len(t)-1], "''", "'")), nil
	}
	switch strings.ToUpper(t) {
	case "NULL":
		return Null(), nil
	case "TRUE":
		return Bool(true), nil
	case "FALSE":
		return Bool(false), nil
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return Value{}, fmt.Errorf("value: non-finite literal %q", s)
		}
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("value: cannot parse literal %q", s)
}

// CoerceTo converts v to the requested kind when a lossless or standard SQL
// coercion exists (INT↔FLOAT, anything from NULL stays NULL).
func (v Value) CoerceTo(k Kind) (Value, error) {
	if v.kind == k || v.kind == KindNull {
		return v, nil
	}
	switch {
	case v.kind == KindInt && k == KindFloat:
		return Float(float64(v.i)), nil
	case v.kind == KindFloat && k == KindInt:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return Int(int64(v.f)), nil
		}
		return Value{}, fmt.Errorf("value: cannot coerce non-integral %v to INT", v.f)
	default:
		return Value{}, fmt.Errorf("value: cannot coerce %s to %s", v.kind, k)
	}
}
