package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindBool:   "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	ok := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BigInt": KindInt,
		"float": KindFloat, "DOUBLE": KindFloat, "real": KindFloat,
		"varchar": KindString, "TEXT": KindString, " string ": KindString,
		"bool": KindBool, "BOOLEAN": KindBool,
	}
	for in, want := range ok {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float: %v", v)
	}
	if v := Str("abc"); v.Kind() != KindString || v.AsStr() != "abc" {
		t.Errorf("Str: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool: %v", v)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull broken")
	}
	// Int widens through AsFloat.
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat(Int) should widen")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt", func() { Str("x").AsInt() })
	mustPanic("AsFloat", func() { Str("x").AsFloat() })
	mustPanic("AsStr", func() { Int(1).AsStr() })
	mustPanic("AsBool", func() { Int(1).AsBool() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Cross-kind non-numeric comparison is a total order by kind tag.
	if Int(1).Compare(Str("a")) >= 0 || Str("a").Compare(Int(1)) <= 0 {
		t.Error("cross-kind ordering not antisymmetric")
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		vals := []Value{Int(a), Int(b), Str(s1), Str(s2), Float(float64(a) / 3), Null(), Bool(a%2 == 0)}
		for _, x := range vals {
			for _, y := range vals {
				if x.Compare(y) != -y.Compare(x) {
					return false
				}
				if x.Compare(y) == 0 != x.Equal(y) {
					return false
				}
				if (x.Compare(y) < 0) != x.Less(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualConsistency(t *testing.T) {
	f := func(i int64, s string) bool {
		a, b := Int(i), Float(float64(i))
		if float64(i) == math.Trunc(float64(i)) && a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		return Str(s).Hash() == Str(s).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Int(0).Hash() != Float(math.Copysign(0, -1)).Hash() {
		t.Error("-0.0 and 0 must hash equally")
	}
	if Int(1).Hash() == Str("1").Hash() {
		t.Error("kind must participate in hash")
	}
}

func TestWidth(t *testing.T) {
	if Int(5).Width() != 8 || Float(1).Width() != 8 || Bool(true).Width() != 8 {
		t.Error("fixed-width kinds must be 8 bytes")
	}
	if Str("abcd").Width() != 8 {
		t.Errorf("Str width = %d, want 8", Str("abcd").Width())
	}
	if Null().Width() != 1 {
		t.Error("null width")
	}
}

func TestStringAndSQL(t *testing.T) {
	cases := []struct {
		v         Value
		str, sqls string
	}{
		{Int(7), "7", "7"},
		{Float(2.5), "2.5", "2.5"},
		{Str("o'hara"), "o'hara", "'o''hara'"},
		{Bool(true), "true", "true"},
		{Null(), "NULL", "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.str)
		}
		if got := c.v.SQL(); got != c.sqls {
			t.Errorf("SQL(%v) = %q, want %q", c.v, got, c.sqls)
		}
	}
}

func TestParseLiteral(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"'musical'", Str("musical")},
		{"'o''hara'", Str("o'hara")},
		{"TRUE", Bool(true)},
		{"false", Bool(false)},
		{"NULL", Null()},
		{" 7 ", Int(7)},
	}
	for _, c := range cases {
		got, err := ParseLiteral(c.in)
		if err != nil {
			t.Errorf("ParseLiteral(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseLiteral(%q) = %v (%v), want %v", c.in, got, got.Kind(), c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3"} {
		if _, err := ParseLiteral(bad); err == nil {
			t.Errorf("ParseLiteral(%q) should fail", bad)
		}
	}
}

func TestParseLiteralRoundTrip(t *testing.T) {
	f := func(i int64, s string) bool {
		vi, err := ParseLiteral(Int(i).SQL())
		if err != nil || !vi.Equal(Int(i)) {
			return false
		}
		vs, err := ParseLiteral(Str(s).SQL())
		if err != nil || !vs.Equal(Str(s)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerceTo(t *testing.T) {
	if v, err := Int(3).CoerceTo(KindFloat); err != nil || v.AsFloat() != 3.0 {
		t.Errorf("Int->Float: %v %v", v, err)
	}
	if v, err := Float(4).CoerceTo(KindInt); err != nil || v.AsInt() != 4 {
		t.Errorf("Float->Int: %v %v", v, err)
	}
	if _, err := Float(4.5).CoerceTo(KindInt); err == nil {
		t.Error("4.5 -> INT should fail")
	}
	if _, err := Str("x").CoerceTo(KindInt); err == nil {
		t.Error("string -> INT should fail")
	}
	if v, err := Null().CoerceTo(KindInt); err != nil || !v.IsNull() {
		t.Error("NULL coerces to anything as NULL")
	}
	if v, err := Int(1).CoerceTo(KindInt); err != nil || v.AsInt() != 1 {
		t.Error("identity coercion")
	}
}

func TestNaNHandling(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Compare(Int(5)) != -1 || Int(5).Compare(nan) != 1 {
		t.Error("NaN must sort before finite numbers")
	}
	if nan.Compare(Float(math.NaN())) != 0 {
		t.Error("NaN must equal NaN under Compare")
	}
	if nan.Hash() != Float(math.NaN()).Hash() {
		t.Error("equal NaNs must hash equally")
	}
	for _, bad := range []string{"nan", "NaN", "inf", "+Inf", "-inf"} {
		if _, err := ParseLiteral(bad); err == nil {
			t.Errorf("ParseLiteral(%q) must reject non-finite numbers", bad)
		}
	}
}
