package rewrite

import (
	"fmt"
	"strings"

	"cqp/internal/prefs"
	"cqp/internal/prefspace"
	"cqp/internal/query"
	"cqp/internal/schema"
)

// This file implements the optimization the paper's footnote 1 leaves open:
// "there are various cases where multiple preferences can be effectively
// combined into one sub-query". Combining preferences lets the union query
// scan the shared relations once instead of once per preference, cutting
// cost without changing the answer — when it is safe.
//
// Safety: a sub-query's conditions share one tuple binding per relation,
// while separate sub-queries bind existentially per preference. The two
// coincide exactly when the preference's join path is *functional*: every
// step joins onto the key of the right-hand relation, so each anchor tuple
// reaches at most one tuple there (e.g. MOVIE → DIRECTOR via the did key).
// Multi-valued paths (MOVIE → GENRE: a movie has many genre rows) must stay
// separate — "genre = comedy AND genre = drama" on one row is empty, while
// a movie may well satisfy both through different rows.
//
// Empty paths (selections on the query's own relations) merge under the
// same single-binding reading of the base query; when the projection does
// not functionally determine the anchor tuple (duplicate projected values
// from different tuples), merged and unmerged answers can differ on those
// duplicates. ConstructMerged is therefore an explicit opt-in.

// ConstructMerged integrates the selected preferences like Construct but
// combines preferences with identical functional join paths into shared
// sub-queries. Only the paper's all-match semantics is supported (merging
// under any-match would turn per-preference unions into conjunctions).
func ConstructMerged(q *query.Query, selected []prefspace.Pref, sch *schema.Schema) *Personalized {
	p := &Personalized{Base: q, AllMatch: true}
	if len(selected) == 0 {
		p.Subs = []*query.Query{q.Clone()}
		return p
	}
	type group struct {
		prefs []prefspace.Pref
	}
	var order []string
	groups := make(map[string]*group)
	for idx, pref := range selected {
		key := pathKey(sch, pref.Imp)
		if key == "" {
			// Non-functional path: isolate in its own sub-query.
			key = fmt.Sprintf("#%d", idx)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.prefs = append(g.prefs, pref)
	}
	for _, key := range order {
		g := groups[key]
		sq := q.Clone()
		dois := make([]float64, 0, len(g.prefs))
		for _, pref := range g.prefs {
			for _, j := range pref.Imp.Path {
				if !hasJoin(sq, j.AsJoin()) {
					sq.AddJoin(j.AsJoin())
				}
			}
			sq.AddSelection(pref.Imp.Sel.AsSelection())
			dois = append(dois, pref.Doi)
		}
		p.Subs = append(p.Subs, sq)
		// The group's doi contribution is the conjunction of its members
		// (they are jointly satisfied or jointly absent after merging).
		p.Dois = append(p.Dois, prefs.Conjunction(dois...))
	}
	return p
}

// pathKey returns a canonical identity for a preference's join path when
// every step is functional (joins onto the right relation's key), or ""
// when the path must not be merged.
func pathKey(sch *schema.Schema, imp prefs.Implicit) string {
	parts := make([]string, 0, len(imp.Path))
	for _, j := range imp.Path {
		rel := sch.Relation(j.Right.Relation)
		if rel == nil || rel.Key == "" || rel.Key != j.Right.Attr {
			return ""
		}
		parts = append(parts, j.String())
	}
	if len(parts) == 0 {
		return "<anchor>"
	}
	return strings.Join(parts, "&")
}

// MergedSavings reports how many sub-queries merging eliminates for a
// selection — a quick cost-delta proxy (each eliminated sub-query saves one
// scan of the base query's relations plus the shared path's).
func MergedSavings(q *query.Query, selected []prefspace.Pref, sch *schema.Schema) int {
	merged := ConstructMerged(q, selected, sch)
	return len(selected) - len(merged.Subs)
}
