package rewrite

import (
	"math"
	"strings"
	"testing"

	"cqp/internal/catalog"
	"cqp/internal/estimate"
	"cqp/internal/exec"
	"cqp/internal/prefs"
	"cqp/internal/prefspace"
	"cqp/internal/sqlparse"
	"cqp/internal/storage"
	"cqp/internal/testutil"
)

// paperSetup reproduces the Section 4.2 example: the movies query plus the
// two preferences selected by the system (W. Allen and musical).
func paperSetup(t *testing.T) (*storage.DB, *prefspace.Space) {
	t.Helper()
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	profile, err := prefs.ParseProfile(`
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := prefspace.Build(q, profile, est, prefspace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 2 {
		t.Fatalf("expected the paper's two implicit preferences, got %d", sp.K)
	}
	return db, sp
}

func TestIntegrateBuildsSubQueries(t *testing.T) {
	db, sp := paperSetup(t)
	q1 := Integrate(sp.Query, sp.P[0]) // W. Allen
	if !q1.HasRelation("DIRECTOR") || len(q1.Joins) != 1 || len(q1.Selections) != 1 {
		t.Errorf("q1 = %s", q1.SQL())
	}
	if err := q1.Validate(db.Schema()); err != nil {
		t.Errorf("q1 invalid: %v", err)
	}
	want := "SELECT MOVIE.title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'"
	if q1.SQL() != want {
		t.Errorf("q1 SQL = %s", q1.SQL())
	}
}

func TestIntegrateNoDuplicateJoins(t *testing.T) {
	db, sp := paperSetup(t)
	// Base query already joins MOVIE with DIRECTOR.
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did")
	sq := Integrate(q, sp.P[0])
	if len(sq.Joins) != 1 {
		t.Errorf("join duplicated: %s", sq.SQL())
	}
}

func TestConstructSQLShape(t *testing.T) {
	_, sp := paperSetup(t)
	p := Construct(sp.Query, sp.P, true)
	sql := p.SQL()
	for _, want := range []string{
		"UNION ALL",
		"GROUP BY MOVIE.title",
		"HAVING COUNT(*) = 2",
		"DIRECTOR.name = 'W. Allen'",
		"GENRE.genre = 'musical'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	if p.MinMatches() != 2 {
		t.Errorf("MinMatches = %d", p.MinMatches())
	}
	any := Construct(sp.Query, sp.P, false)
	if !strings.Contains(any.SQL(), "HAVING COUNT(*) >= 1") || any.MinMatches() != 1 {
		t.Errorf("any-match SQL = %s", any.SQL())
	}
}

func TestConstructEmptySelection(t *testing.T) {
	db, sp := paperSetup(t)
	p := Construct(sp.Query, nil, true)
	if p.SQL() != sp.Query.SQL() {
		t.Errorf("empty selection should degrade to Q: %s", p.SQL())
	}
	res, err := p.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Errorf("rows = %d, want all 6 movies", len(res.Rows))
	}
}

func TestExecuteAllMatch(t *testing.T) {
	db, sp := paperSetup(t)
	p := Construct(sp.Query, sp.P, true)
	res, err := p.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key[0].String() != "Everyone Says I Love You" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// doi = 1 − (1−0.8)(1−0.45) = 0.89.
	if math.Abs(res.Rows[0].Doi-0.89) > 1e-9 {
		t.Errorf("doi = %g", res.Rows[0].Doi)
	}
}

func TestExecuteAnyMatchRanksByDoi(t *testing.T) {
	db, sp := paperSetup(t)
	p := Construct(sp.Query, sp.P, false)
	res, err := p.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (three W. Allen movies, one also musical)", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].Doi < res.Rows[i].Doi {
			t.Error("results must be ranked by decreasing doi")
		}
	}
}

// TestRewriteEquivalence checks the paper's rewriting against direct
// conjunctive evaluation: executing the union-all/having form equals
// evaluating Q with all preference conditions conjoined (intersection
// semantics on the projection).
func TestRewriteEquivalence(t *testing.T) {
	db, sp := paperSetup(t)
	p := Construct(sp.Query, sp.P, true)
	res, err := p.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	// Direct conjunction: Q plus every preference's joins and selections.
	direct := sp.Query.Clone()
	for _, pref := range sp.P {
		for _, j := range pref.Imp.Path {
			direct.AddJoin(j.AsJoin())
		}
		direct.AddSelection(pref.Imp.Sel.AsSelection())
	}
	direct.Distinct = true
	dres, err := exec.Eval(db, direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(dres.Rows) {
		t.Fatalf("union/having %d rows, direct conjunction %d rows", len(res.Rows), len(dres.Rows))
	}
	got := map[string]bool{}
	for _, r := range res.Rows {
		got[r.Key[0].String()] = true
	}
	for _, r := range dres.Rows {
		if !got[r[0].String()] {
			t.Errorf("direct row %v missing from union result", r)
		}
	}
}
