// Package rewrite implements the paper's Personalized Query Construction
// module (Section 4.2): after the CQP search has chosen the optimal subset
// of preferences PU, this module builds the actual personalized query —
// one sub-query per preference, each separately integrating that
// preference into Q, combined as
//
//	SELECT <proj> FROM (q1 UNION ALL q2 UNION ALL ...)
//	GROUP BY <proj> HAVING COUNT(*) = L
//
// Sub-query outputs are deduplicated on the projection so COUNT(*) counts
// sub-queries (preferences) rather than duplicate tuples; the paper's
// example ignores that distinction. An any-match variant (HAVING
// COUNT(*) >= 1) with r-based result ranking is also provided, matching the
// paper's remark that results "may be ranked based on their degree of
// interest".
package rewrite

import (
	"context"
	"fmt"
	"strings"

	"cqp/internal/exec"
	"cqp/internal/prefspace"
	"cqp/internal/query"
	"cqp/internal/storage"
)

// Personalized is a constructed personalized query Qx = Q ∧ Px.
type Personalized struct {
	// Base is the original query Q.
	Base *query.Query
	// Subs holds one sub-query per integrated preference; just [Q] when no
	// preferences were selected.
	Subs []*query.Query
	// Dois holds each integrated preference's doi, aligned with Subs
	// (empty when no preferences were selected).
	Dois []float64
	// AllMatch selects the paper's HAVING COUNT(*) = L semantics; false
	// selects the any-match (>= 1) ranking variant.
	AllMatch bool
}

// Construct integrates the selected preferences into Q.
func Construct(q *query.Query, selected []prefspace.Pref, allMatch bool) *Personalized {
	p := &Personalized{Base: q, AllMatch: allMatch}
	if len(selected) == 0 {
		p.Subs = []*query.Query{q.Clone()}
		return p
	}
	for _, pref := range selected {
		p.Subs = append(p.Subs, Integrate(q, pref))
		p.Dois = append(p.Dois, pref.Doi)
	}
	return p
}

// Integrate builds the sub-query Q ∧ p for one preference: Q plus the
// preference's join path and terminal selection.
func Integrate(q *query.Query, pref prefspace.Pref) *query.Query {
	sq := q.Clone()
	for _, j := range pref.Imp.Path {
		if !hasJoin(sq, j.AsJoin()) {
			sq.AddJoin(j.AsJoin())
		}
	}
	sq.AddSelection(pref.Imp.Sel.AsSelection())
	return sq
}

// hasJoin reports whether the query already contains the join (in either
// orientation), so integrating a preference over Q's own relations does not
// duplicate conditions.
func hasJoin(q *query.Query, j query.Join) bool {
	for _, have := range q.Joins {
		if have == j || (have.Left == j.Right && have.Right == j.Left) {
			return true
		}
	}
	return false
}

// MinMatches returns the HAVING COUNT(*) threshold: L for all-match, 1 for
// any-match.
func (p *Personalized) MinMatches() int {
	if p.AllMatch {
		return len(p.Subs)
	}
	return 1
}

// SQL renders the personalized query in the paper's union form. With no
// integrated preferences it is simply the base query.
func (p *Personalized) SQL() string {
	if len(p.Dois) == 0 {
		return p.Base.SQL()
	}
	proj := make([]string, len(p.Base.Project))
	for i, a := range p.Base.Project {
		proj[i] = a.String()
	}
	projList := strings.Join(proj, ", ")
	subs := make([]string, len(p.Subs))
	for i, s := range p.Subs {
		d := s.Clone()
		d.Distinct = true
		subs[i] = d.SQL()
	}
	cmp := ">="
	n := 1
	if p.AllMatch {
		cmp = "="
		n = len(p.Subs)
	}
	return fmt.Sprintf("SELECT %s FROM (%s) GROUP BY %s HAVING COUNT(*) %s %d",
		projList, strings.Join(subs, " UNION ALL "), projList, cmp, n)
}

// Execute evaluates the personalized query on the store, returning ranked
// results and I/O accounting.
func (p *Personalized) Execute(db *storage.DB) (*exec.UnionResult, error) {
	return p.ExecuteContext(context.Background(), db)
}

// ExecuteContext is Execute honoring cancellation, which the executor
// checks before each sub-query and between its relation scans.
func (p *Personalized) ExecuteContext(ctx context.Context, db *storage.DB) (*exec.UnionResult, error) {
	dois := p.Dois
	if len(dois) == 0 {
		dois = nil
	}
	return exec.EvalUnionContext(ctx, db, p.Subs, dois, p.MinMatches())
}

// ExecuteTopKContext evaluates the personalized query keeping only the k
// best-ranked rows: the executor maintains a bounded heap while groups
// stream out of the union's group table, so the full ranked answer never
// materializes.
func (p *Personalized) ExecuteTopKContext(ctx context.Context, db *storage.DB, k int) (*exec.UnionResult, error) {
	dois := p.Dois
	if len(dois) == 0 {
		dois = nil
	}
	return exec.EvalUnionTopK(ctx, db, p.Subs, dois, p.MinMatches(), k)
}
