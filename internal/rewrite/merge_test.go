package rewrite

import (
	"sort"
	"strings"
	"testing"

	"cqp/internal/catalog"
	"cqp/internal/estimate"
	"cqp/internal/prefs"
	"cqp/internal/prefspace"
	"cqp/internal/sqlparse"
	"cqp/internal/storage"
	"cqp/internal/testutil"
)

// mergeSetup extracts a preference space with two DIRECTOR-path
// preferences (functional: did is DIRECTOR's key), one MOVIE-anchor
// preference, and two GENRE-path preferences (multi-valued).
func mergeSetup(t *testing.T) (*storage.DB, *prefspace.Space) {
	t.Helper()
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	profile, err := prefs.ParseProfile(`
doi(MOVIE.mid = GENRE.mid) = 0.95
doi(MOVIE.did = DIRECTOR.did) = 0.9
doi(DIRECTOR.name <> 'S. Kubrick') = 0.8
doi(DIRECTOR.did <= 3) = 0.7
doi(MOVIE.year >= 1950) = 0.6
doi(GENRE.genre = 'comedy') = 0.5
doi(GENRE.genre = 'musical') = 0.4
`)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := prefspace.Build(q, profile, est, prefspace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 5 {
		t.Fatalf("K = %d, want 5", sp.K)
	}
	return db, sp
}

func TestConstructMergedGrouping(t *testing.T) {
	db, sp := mergeSetup(t)
	merged := ConstructMerged(sp.Query, sp.P, db.Schema())
	// 5 preferences; the two DIRECTOR-path ones share a sub-query, the
	// MOVIE-anchor one is alone, the two GENRE ones stay separate:
	// 4 sub-queries total.
	if len(merged.Subs) != 4 {
		t.Fatalf("merged into %d sub-queries, want 4:\n%s", len(merged.Subs), merged.SQL())
	}
	if got := MergedSavings(sp.Query, sp.P, db.Schema()); got != 1 {
		t.Errorf("savings = %d, want 1", got)
	}
	// A merged sub-query holds both DIRECTOR selections.
	foundBoth := false
	for _, sq := range merged.Subs {
		s := sq.SQL()
		if strings.Contains(s, "S. Kubrick") && strings.Contains(s, "DIRECTOR.did <= 3") {
			foundBoth = true
			if strings.Count(s, "MOVIE.did = DIRECTOR.did") != 1 {
				t.Errorf("join duplicated in merged sub-query: %s", s)
			}
		}
	}
	if !foundBoth {
		t.Errorf("DIRECTOR preferences not merged:\n%s", merged.SQL())
	}
	// GENRE preferences must never merge (multi-valued path).
	for _, sq := range merged.Subs {
		s := sq.SQL()
		if strings.Contains(s, "comedy") && strings.Contains(s, "musical") {
			t.Errorf("multi-valued GENRE path wrongly merged: %s", s)
		}
	}
}

// TestMergedEquivalence: merged and unmerged all-match personalized
// queries return the same answers and the merged one reads fewer blocks.
func TestMergedEquivalence(t *testing.T) {
	db, sp := mergeSetup(t)
	plain := Construct(sp.Query, sp.P, true)
	merged := ConstructMerged(sp.Query, sp.P, db.Schema())

	pres, err := plain.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := merged.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	keys := func(res []string) []string { sort.Strings(res); return res }
	var a, b []string
	for _, r := range pres.Rows {
		a = append(a, r.Key[0].String())
	}
	for _, r := range mres.Rows {
		b = append(b, r.Key[0].String())
	}
	if strings.Join(keys(a), "|") != strings.Join(keys(b), "|") {
		t.Fatalf("merged answers differ:\n%v\n%v", a, b)
	}
	if mres.BlockReads >= pres.BlockReads {
		t.Errorf("merging should save I/O: %d vs %d blocks", mres.BlockReads, pres.BlockReads)
	}
}

func TestConstructMergedEmptySelection(t *testing.T) {
	db, sp := mergeSetup(t)
	merged := ConstructMerged(sp.Query, nil, db.Schema())
	if merged.SQL() != sp.Query.SQL() {
		t.Errorf("empty selection should degrade to Q")
	}
}

// TestMergedDoiGrouping: a merged group's doi is the conjunction of its
// members, and the total across groups matches the ungrouped conjunction.
func TestMergedDoiGrouping(t *testing.T) {
	db, sp := mergeSetup(t)
	merged := ConstructMerged(sp.Query, sp.P, db.Schema())
	var groupDois []float64
	groupDois = append(groupDois, merged.Dois...)
	total := prefs.Conjunction(groupDois...)
	var all []float64
	for _, p := range sp.P {
		all = append(all, p.Doi)
	}
	want := prefs.Conjunction(all...)
	if diff := total - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("group doi composition %v != member composition %v", total, want)
	}
}
