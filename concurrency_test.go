package cqp_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqp"
	"cqp/internal/obs"
)

// TestPersonalizerConcurrentStress hammers one Personalizer from many
// goroutines across every algorithm while Refresh and Observe swap the
// estimator, metrics registry and accuracy tracker mid-flight. Run with
// -race: before the Personalizer grew its RWMutex, the est/metrics/acc
// swap in Refresh raced with every in-flight pipeline read.
func TestPersonalizerConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	db := cqp.SyntheticMovieDB(300, 1)
	p := cqp.NewPersonalizer(db)
	u := cqp.SyntheticProfile(30, 2)
	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	prob := cqp.Problem2(10000)
	algos := cqp.AlgorithmNames()
	if len(algos) != 5 {
		t.Fatalf("expected 5 algorithms, got %v", algos)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var runs, refreshes atomic.Int64

	// One goroutine per algorithm, personalizing in a loop.
	for _, name := range algos {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := p.PersonalizeContext(context.Background(), q, u, prob,
					cqp.WithAlgorithm(name), cqp.WithStateBudget(1<<16))
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if res.SQL == "" {
					t.Errorf("%s: empty personalized SQL", name)
					return
				}
				runs.Add(1)
			}
		}(name)
	}
	// Frontier and top-K readers exercise the other entry points.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := p.PersonalizeFront(q, u, 10000, 0, 0, 4, cqp.WithStateBudget(1<<14)); err != nil {
				t.Errorf("front: %v", err)
				return
			}
			if _, _, err := p.EstimateQuery(q); err != nil {
				t.Errorf("estimate: %v", err)
				return
			}
		}
	}()
	// Refresh and Observe keep replacing the pipeline underneath them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Refresh()
			refreshes.Add(1)
			p.Observe(obs.NewRegistry())
			p.EstimatorAccuracy()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if runs.Load() == 0 {
		t.Fatal("no personalize calls completed")
	}
	if refreshes.Load() == 0 {
		t.Fatal("no refreshes completed")
	}
	if gen := p.Generation(); gen < uint64(refreshes.Load()) {
		t.Fatalf("generation %d < refreshes %d", gen, refreshes.Load())
	}
}

// TestPersonalizeContextDeadline checks that an already-expired context
// aborts the pipeline with context.DeadlineExceeded before any work runs.
func TestPersonalizeContextDeadline(t *testing.T) {
	db := cqp.SyntheticMovieDB(200, 1)
	p := cqp.NewPersonalizer(db)
	u := cqp.SyntheticProfile(20, 2)
	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := p.PersonalizeContext(ctx, q, u, cqp.Problem2(10000)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// A live context still works, and its result refuses execution once
	// the context dies.
	res, err := p.PersonalizeContext(context.Background(), q, u, cqp.Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := res.ExecuteContext(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("execute with cancelled context: %v, want context.Canceled", err)
	}
}

// TestFrontAndTopKContextDeadline checks that the frontier and top-k
// entry points honor their context like PersonalizeContext does: an
// already-expired context aborts before any pipeline work runs.
func TestFrontAndTopKContextDeadline(t *testing.T) {
	db := cqp.SyntheticMovieDB(200, 1)
	p := cqp.NewPersonalizer(db)
	u := cqp.SyntheticProfile(20, 2)
	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := p.PersonalizeFrontContext(ctx, q, u, 10000, 0, 0, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("front: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := p.PersonalizeTopKContext(ctx, q, u, 10000, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("topk: err = %v, want context.DeadlineExceeded", err)
	}

	// Live contexts behave exactly like the context-free entry points.
	if _, err := p.PersonalizeFrontContext(context.Background(), q, u, 10000, 0, 0, 0); err != nil {
		t.Fatalf("front with live context: %v", err)
	}
	if _, err := p.PersonalizeTopKContext(context.Background(), q, u, 10000, 5); err != nil {
		t.Fatalf("topk with live context: %v", err)
	}
}
