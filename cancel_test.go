package cqp_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cqp"
)

// countdownCtx is a context whose Err() reports healthy for the first fuse
// calls and context.Canceled from then on. It turns the pipeline's own
// deadline checkpoints into an enumerable set: fuse = n dies exactly at the
// n-th checkpoint, wherever in the Figure-2 pipeline that is, so one table
// covers cancellation at every phase boundary without sleeping or racing a
// real timer. Err() calls are counted atomically — the executor's union
// goroutines poll concurrently.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	fuse  int64
}

func newCountdownCtx(fuse int64) *countdownCtx {
	return &countdownCtx{Context: context.Background(), fuse: fuse}
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.fuse {
		return context.Canceled
	}
	return nil
}

// runPipeline is the unit under test: personalize, then execute, under ctx.
func runPipeline(ctx context.Context, p *cqp.Personalizer, q *cqp.Query, u *cqp.Profile) error {
	res, err := p.PersonalizeContext(ctx, q, u, cqp.Problem2(10000))
	if err != nil {
		return err
	}
	_, err = res.ExecuteContext(ctx)
	return err
}

// TestExecuteContextAlreadyCancelled checks the contract directly: a context
// cancelled before ExecuteContext is called returns promptly with ctx.Err()
// and runs no sub-query.
func TestExecuteContextAlreadyCancelled(t *testing.T) {
	db := cqp.SyntheticMovieDB(200, 3)
	p := cqp.NewPersonalizer(db)
	u := cqp.SyntheticProfile(10, 4)
	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Personalize(q, u, cqp.Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = res.ExecuteContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext(cancelled) = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("ExecuteContext took %v on a dead context, want prompt return", d)
	}
}

// TestPipelineCancelledAtEveryPhase walks the countdown fuse across every
// deadline checkpoint the personalize+execute pipeline has — entry,
// post-prefspace, post-search, execute entry, and the executor's
// per-relation checks — asserting each one aborts with ctx.Err() promptly
// rather than finishing the phase (or worse, the request) on a dead context.
func TestPipelineCancelledAtEveryPhase(t *testing.T) {
	db := cqp.SyntheticMovieDB(200, 3)
	p := cqp.NewPersonalizer(db)
	u := cqp.SyntheticProfile(10, 4)
	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}

	// Warm-up run: the estimator memoizes per-preference estimates across
	// runs, so the first personalization crosses per-candidate estimation
	// checkpoints that later (memo-hit) runs skip. One warm run makes the
	// checkpoint count structural again for everything that follows.
	if err := runPipeline(context.Background(), p, q, u); err != nil {
		t.Fatalf("warm-up run failed: %v", err)
	}

	// Probe run: count the pipeline's checkpoints with a fuse that never
	// blows. The count is structural (phase boundaries + one per scanned
	// relation), so it is stable across runs of the same query.
	probe := newCountdownCtx(1 << 30)
	if err := runPipeline(probe, p, q, u); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	checkpoints := probe.calls.Load()
	if checkpoints < 4 {
		t.Fatalf("pipeline has %d deadline checkpoints, expected at least the four phase boundaries", checkpoints)
	}

	for n := int64(0); n < checkpoints; n++ {
		ctx := newCountdownCtx(n)
		start := time.Now()
		err := runPipeline(ctx, p, q, u)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("checkpoint %d/%d: err = %v, want context.Canceled", n, checkpoints, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("checkpoint %d/%d: took %v to honor cancellation", n, checkpoints, d)
		}
	}
}

// TestPipelineCancelledInIteratorTree aims the countdown fuse at the
// streaming executor: a join query over a larger database forces the
// iterator tree through scan, join-build, probe, distinct and union
// grouping checkpoints (one poll every few dozen rows), and every sampled
// fuse must abort with ctx.Err() rather than finish on a dead context.
func TestPipelineCancelledInIteratorTree(t *testing.T) {
	db := cqp.SyntheticMovieDB(600, 4)
	p := cqp.NewPersonalizer(db)
	u := cqp.SyntheticProfile(12, 5)
	q, err := cqp.ParseQuery(db.Schema(),
		"SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did")
	if err != nil {
		t.Fatal(err)
	}

	// Warm the estimate memo first so the probe and every fused run cross
	// the same (memo-hit) checkpoint sequence.
	if err := runPipeline(context.Background(), p, q, u); err != nil {
		t.Fatalf("warm-up run failed: %v", err)
	}

	probe := newCountdownCtx(1 << 30)
	if err := runPipeline(probe, p, q, u); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	checkpoints := probe.calls.Load()
	// The streaming executor polls inside row loops, so a join over 600
	// movies must cross far more checkpoints than the phase boundaries.
	if checkpoints < 20 {
		t.Fatalf("iterator tree crossed only %d checkpoints", checkpoints)
	}
	step := checkpoints / 60
	if step == 0 {
		step = 1
	}
	for n := int64(0); n < checkpoints; n += step {
		ctx := newCountdownCtx(n)
		start := time.Now()
		err := runPipeline(ctx, p, q, u)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("checkpoint %d/%d: err = %v, want context.Canceled", n, checkpoints, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("checkpoint %d/%d: took %v to honor cancellation", n, checkpoints, d)
		}
	}
}
