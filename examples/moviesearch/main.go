// Moviesearch walks one profile and one query through all six CQP problems
// of the paper's Table 1, showing how the same request yields different
// personalized queries as the optimization objective and constraints
// change — and compares the five Problem-2 search algorithms on the same
// instance.
package main

import (
	"fmt"
	"log"

	"cqp"
)

func main() {
	db := cqp.SyntheticMovieDB(4000, 3)
	p := cqp.NewPersonalizer(db)
	profile := cqp.SyntheticProfile(60, 5)

	q, err := cqp.ParseQuery(db.Schema(),
		"SELECT title FROM MOVIE WHERE MOVIE.year >= 1960")
	if err != nil {
		log.Fatal(err)
	}
	baseCost, baseSize, err := p.EstimateQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nestimated: %.0f ms, %.0f rows\n\n", q.SQL(), baseCost, baseSize)

	cmax := baseCost * 12
	smin, smax := 1.0, baseSize/4
	dmin := 0.9

	problems := []struct {
		name string
		prob cqp.Problem
	}{
		{"Problem 1: MAX doi, size window", cqp.Problem1(smin, smax)},
		{"Problem 2: MAX doi, cost bound", cqp.Problem2(cmax)},
		{"Problem 3: MAX doi, cost bound + size window", cqp.Problem3(cmax, smin, smax)},
		{"Problem 4: MIN cost, doi floor", cqp.Problem4(dmin)},
		{"Problem 5: MIN cost, doi floor + size window", cqp.Problem5(dmin, smin, smax)},
		{"Problem 6: MIN cost, size window", cqp.Problem6(smin, smax)},
	}
	for _, pr := range problems {
		res, err := p.Personalize(q, profile, pr.prob, cqp.WithMaxK(20))
		if err != nil {
			fmt.Printf("— %s —\n  no solution: %v\n\n", pr.name, err)
			continue
		}
		fmt.Printf("— %s —\n", pr.name)
		fmt.Printf("  solver %s: %d prefs, doi %.4f, cost %.0f ms, size %.1f\n\n",
			res.Solution.Stats.Algorithm, len(res.Preferences),
			res.Solution.Doi, res.Solution.Cost, res.Solution.Size)
	}

	// The five Problem-2 algorithms on the same instance.
	fmt.Println("— Problem 2 across the five search algorithms —")
	for _, name := range cqp.AlgorithmNames() {
		res, err := p.Personalize(q, profile, cqp.Problem2(cmax),
			cqp.WithAlgorithm(name), cqp.WithMaxK(20), cqp.WithStateBudget(1<<20))
		if err != nil {
			log.Fatal(err)
		}
		st := res.Solution.Stats
		fmt.Printf("  %-15s doi %.6f  %8s  %7d states  %6.1f KB\n",
			name, res.Solution.Doi, cqp.FormatDuration(st.Duration),
			st.StatesVisited, float64(st.PeakMemBytes)/1024)
	}
}
