// Mobiletourist reproduces the paper's Section 1 scenario: the same user
// (Al) issues the same request under two search contexts.
//
// At the office, on a fast connection, the system can afford an expensive
// personalized query with extensive results — Problem 2 with a loose cost
// bound. Walking through Pisa on a palmtop, it must answer fast and return
// a handful of rows — Problem 3 with a tight cost bound and smax = 3.
// The scenario is mapped onto the movie domain (the substrate this library
// ships): "restaurants in Pisa" becomes "movies matching Al's tastes".
package main

import (
	"fmt"
	"log"

	"cqp"
)

func main() {
	db := cqp.SyntheticMovieDB(4000, 42)
	p := cqp.NewPersonalizer(db)
	profile := cqp.SyntheticProfile(40, 7)

	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		log.Fatal(err)
	}
	baseCost, baseSize, err := p.EstimateQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base query: %s (est. %.0f ms, %.0f rows)\n\n", q.SQL(), baseCost, baseSize)

	// Context 1: office desktop. Generous budget; keep the answer extensive
	// (at least 10 rows) so over-personalization cannot empty it — the
	// paper's motivation for the size lower bound.
	office, err := p.Personalize(q, profile, cqp.Problem3(baseCost*40, 10, baseSize))
	if err != nil {
		log.Fatal(err)
	}
	report("office / high bandwidth (Problem 3, loose cmax, smin = 10)", office)

	// Context 2: palmtop in the old town. Tight latency, at most 3 rows.
	palmtop, err := p.Personalize(q, profile, cqp.Problem3(baseCost*6, 1, 3))
	if err != nil {
		log.Fatal(err)
	}
	report("palmtop / walking in Pisa (Problem 3, tight cmax, smax = 3)", palmtop)

	// Show what actually comes back in the palmtop context.
	rows, err := palmtop.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("palmtop answer (%d rows):\n", len(rows.Rows))
	for i, r := range rows.Rows {
		if i >= 5 {
			break
		}
		fmt.Printf("   doi %.4f  %v\n", r.Doi, r.Key)
	}
}

func report(context string, res *cqp.Result) {
	fmt.Printf("— %s —\n", context)
	fmt.Printf("  %d preferences integrated, doi %.4f, est. cost %.0f ms, est. size %.1f rows\n",
		len(res.Preferences), res.Solution.Doi, res.Solution.Cost, res.Solution.Size)
	for i, pr := range res.Preferences {
		if i >= 4 {
			fmt.Printf("   ... %d more\n", len(res.Preferences)-4)
			break
		}
		fmt.Println("   ", pr)
	}
	fmt.Println()
}
