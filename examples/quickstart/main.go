// Quickstart: the paper's running example end to end — build the movie
// database of Section 3, load the Figure 1 profile, personalize
// "select title from MOVIE" under a cost bound (Problem 2), and execute
// the rewritten query.
package main

import (
	"fmt"
	"log"

	"cqp"
)

func main() {
	// 1. Schema: MOVIE(mid, title, year, duration, did), DIRECTOR(did,
	//    name), GENRE(mid, genre), with the schema-graph join edges.
	s := cqp.NewSchema()
	s.MustAddRelation("MOVIE", "mid",
		cqp.Column{Name: "mid", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "title", Type: cqp.Str("").Kind()},
		cqp.Column{Name: "year", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "duration", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "did", Type: cqp.Int(0).Kind()})
	s.MustAddRelation("DIRECTOR", "did",
		cqp.Column{Name: "did", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "name", Type: cqp.Str("").Kind()})
	s.MustAddRelation("GENRE", "",
		cqp.Column{Name: "mid", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "genre", Type: cqp.Str("").Kind()})
	s.MustAddJoin("MOVIE.did", "DIRECTOR.did")
	s.MustAddJoin("MOVIE.mid", "GENRE.mid")

	// 2. Data.
	db := cqp.NewDB(s, 0)
	d := db.MustTable("DIRECTOR")
	d.MustInsert(cqp.Int(1), cqp.Str("W. Allen"))
	d.MustInsert(cqp.Int(2), cqp.Str("A. Hitchcock"))
	m := db.MustTable("MOVIE")
	m.MustInsert(cqp.Int(1), cqp.Str("Bananas"), cqp.Int(1971), cqp.Int(82), cqp.Int(1))
	m.MustInsert(cqp.Int(2), cqp.Str("Everyone Says I Love You"), cqp.Int(1996), cqp.Int(101), cqp.Int(1))
	m.MustInsert(cqp.Int(3), cqp.Str("Vertigo"), cqp.Int(1958), cqp.Int(128), cqp.Int(2))
	g := db.MustTable("GENRE")
	g.MustInsert(cqp.Int(1), cqp.Str("comedy"))
	g.MustInsert(cqp.Int(2), cqp.Str("musical"))
	g.MustInsert(cqp.Int(2), cqp.Str("comedy"))
	g.MustInsert(cqp.Int(3), cqp.Str("thriller"))

	// 3. The user profile of Figure 1.
	profile, err := cqp.ParseProfile(`
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Personalize under Problem 2: maximize interest, cost ≤ 1000 ms.
	p := cqp.NewPersonalizer(db)
	q, err := cqp.ParseQuery(db.Schema(), "select title from MOVIE")
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Personalize(q, profile, cqp.Problem2(1000))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("original query: ", q.SQL())
	fmt.Printf("selected %d preferences (doi %.4f, est. cost %.0f ms):\n",
		len(res.Preferences), res.Solution.Doi, res.Solution.Cost)
	for _, pr := range res.Preferences {
		fmt.Println("  ", pr)
	}
	fmt.Println("personalized query:")
	fmt.Println("  ", res.SQL)

	// 5. Execute: only the musical W. Allen movie satisfies both.
	rows, err := res.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers (%d block reads):\n", rows.BlockReads)
	for _, r := range rows.Rows {
		fmt.Printf("   doi %.4f  %v\n", r.Doi, r.Key)
	}
}
