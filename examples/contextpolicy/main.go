// Contextpolicy prototypes what the paper leaves as future work ("mapping
// the search context onto the appropriate CQP problem is a policy issue"):
// a small rule layer that turns device, network and user hints into a CQP
// problem instance, then drives personalization with it.
package main

import (
	"fmt"
	"log"

	"cqp"
)

// SearchContext captures the real-time factors of the paper's Section 1:
// the device, the connection, and transient user requirements.
type SearchContext struct {
	Device     string  // "desktop", "tablet", "phone"
	BandwidthM float64 // downstream Mbit/s
	// MaxAnswers is a transient user requirement ("up to three
	// restaurants"); 0 means unconstrained.
	MaxAnswers int
	// Impatient marks latency-critical interactions (voice, walking).
	Impatient bool
}

// Policy maps a search context onto a CQP problem, scaled by the query's
// base cost and size estimates.
func Policy(ctx SearchContext, baseCost, baseSize float64) cqp.Problem {
	// Cost budget shrinks with slow devices, slow networks and impatience.
	budget := baseCost * 40
	if ctx.Device != "desktop" {
		budget = baseCost * 15
	}
	if ctx.BandwidthM < 2 {
		budget = baseCost * 8
	}
	if ctx.Impatient {
		budget /= 2
	}
	switch {
	case ctx.MaxAnswers > 0:
		// Hard cap on answers: Problem 3 (doi under cost and size bounds).
		return cqp.Problem3(budget, 1, float64(ctx.MaxAnswers))
	case ctx.Device == "phone":
		// Small screens: keep answers browsable even without an explicit cap.
		return cqp.Problem3(budget, 1, baseSize/20)
	case ctx.Impatient:
		// Latency first: cheapest query that is still clearly personal.
		return cqp.Problem4(0.9)
	default:
		return cqp.Problem2(budget)
	}
}

func main() {
	db := cqp.SyntheticMovieDB(4000, 11)
	p := cqp.NewPersonalizer(db)
	profile := cqp.SyntheticProfile(50, 13)
	q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		log.Fatal(err)
	}
	baseCost, baseSize, err := p.EstimateQuery(q)
	if err != nil {
		log.Fatal(err)
	}

	contexts := []struct {
		name string
		ctx  SearchContext
	}{
		{"office desktop, fibre", SearchContext{Device: "desktop", BandwidthM: 500}},
		{"tablet on hotel wifi", SearchContext{Device: "tablet", BandwidthM: 20}},
		{"phone, walking, 'show me 3'", SearchContext{Device: "phone", BandwidthM: 1, MaxAnswers: 3, Impatient: true}},
		{"voice assistant, impatient", SearchContext{Device: "tablet", BandwidthM: 50, Impatient: true}},
	}
	for _, c := range contexts {
		prob := Policy(c.ctx, baseCost, baseSize)
		res, err := p.Personalize(q, profile, prob, cqp.WithMaxK(20))
		if err != nil {
			fmt.Printf("%-30s -> %s: no solution (%v)\n", c.name, prob, err)
			continue
		}
		fmt.Printf("%-30s -> %s\n", c.name, prob)
		fmt.Printf("%30s    %d prefs, doi %.4f, cost %.0f ms, size %.1f\n",
			"", len(res.Preferences), res.Solution.Doi, res.Solution.Cost, res.Solution.Size)
	}
}
